//! Tag-derived alternate-bucket family (`base_hash ^ g(tag)`).
//!
//! The cuckoo displacement loop of the other families must re-hash the
//! *victim's key* to learn its alternate buckets, which costs a key-array
//! load per kick.  This family is built so that a victim's complete
//! candidate set is recoverable from data the probe already has in hand:
//! the way it currently occupies, its set index there, and its one-byte
//! occupancy tag.
//!
//! Structure: way 0 uses a strong (two-round SplitMix64) base index, and
//! every other way XORs a small per-tag offset onto it:
//!
//! ```text
//! index_w(key) = index_0(key) ^ g_w(fingerprint(key)),   g_w(t) < BLOCK_SPAN
//! ```
//!
//! with `g_0(t) = 0` forced and, for a fixed tag `t`, all `g_w(t)` pairwise
//! distinct (each tag gets its own permutation of `0..BLOCK_SPAN`).  Two
//! consequences the table layer builds on:
//!
//! * **Tag-only displacement.**  Given a victim in `(way, index)` whose tag
//!   is `t`, `index_0 = index ^ g_way(t)` and every other candidate is
//!   `index_0 ^ g_w(t)` — bit-identical to re-hashing the victim's key,
//!   because an occupied slot's tag *is* its key's fingerprint.
//!   [`TagAltFamily::derive_all_into`] commutes exactly with
//!   [`IndexHashFamily::index_all_into`].
//! * **Block locality.**  All candidates of a key differ from `index_0`
//!   only in the low `log2(BLOCK_SPAN)` bits, so they share one aligned
//!   [`BLOCK_SPAN`]-set block.  The `localized` probe layout exploits this
//!   by storing a block's tags contiguously: one vector load covers every
//!   candidate of a probe.

use crate::IndexHashFamily;
use ccd_common::rng::{Rng64, SplitMix64};
use ccd_common::{ConfigError, LineAddr};

/// Number of sets in one aligned candidate block (and the range of the
/// per-tag offsets `g_w`).  Power of two; with one tag byte per slot a
/// `ways × BLOCK_SPAN` block of a ≤4-way table fits one 64-byte cache line.
pub const BLOCK_SPAN: usize = 16;

/// Maximum number of ways: offsets within a block must be pairwise
/// distinct, so a family cannot have more ways than block sets.
pub const MAX_WAYS: usize = BLOCK_SPAN;

/// Odd multiplier for the tag fingerprint (the 64-bit golden-ratio
/// constant).  The top byte of `key * FP_MULTIPLIER` mixes every key bit,
/// so colliding keys rarely share a fingerprint.
pub const FP_MULTIPLIER: u64 = 0x9E37_79B9_7F4A_7C15;

/// The occupancy tag stored for `key`: a 7-bit fingerprint with the high
/// bit set so it can never collide with an empty slot's `0` tag.
///
/// This is *the* tag encoding of the whole workspace — `CuckooTable` stores
/// exactly this byte per occupied slot, and [`TagAltFamily`] keys its
/// per-tag offset tables on the low 7 bits of it.
#[inline]
#[must_use]
pub fn fingerprint(key: u64) -> u8 {
    ((key.wrapping_mul(FP_MULTIPLIER) >> 56) as u8) | 0x80
}

/// A family whose alternate buckets are derivable from the tag array alone.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TagAltFamily {
    /// `offsets[way][tag & 0x7F]`: the XOR offset of `way`, `< BLOCK_SPAN`.
    /// Row 0 is all zeros; for a fixed tag the column values are pairwise
    /// distinct (a per-tag permutation of `0..BLOCK_SPAN`, truncated to the
    /// way count).
    offsets: Vec<[u8; 128]>,
    sets: usize,
    set_mask: u64,
    salt: u64,
}

impl TagAltFamily {
    /// Creates a family with a fixed default seed (directories built with
    /// the same shape hash identically).
    ///
    /// # Errors
    ///
    /// See [`TagAltFamily::with_seed`].
    pub fn new(ways: usize, sets: usize) -> Result<Self, ConfigError> {
        Self::with_seed(ways, sets, 0x7A6A_17B1_0C4A_15ED)
    }

    /// Creates a family of `ways` functions over `sets` sets, deriving the
    /// base-index salt and the per-tag offset permutations from `seed`.
    ///
    /// # Errors
    ///
    /// * [`ConfigError::Zero`] if `ways` or `sets` is zero,
    /// * [`ConfigError::TooLarge`] if `ways` exceeds [`MAX_WAYS`],
    /// * [`ConfigError::NotPowerOfTwo`] if `sets` is not a power of two,
    /// * [`ConfigError::TooSmall`] if `sets` is below [`BLOCK_SPAN`] (the
    ///   XOR offsets would index out of range).
    pub fn with_seed(ways: usize, sets: usize, seed: u64) -> Result<Self, ConfigError> {
        if ways == 0 {
            return Err(ConfigError::Zero { what: "ways" });
        }
        if ways > MAX_WAYS {
            return Err(ConfigError::TooLarge {
                what: "ways",
                value: ways as u64,
                max: MAX_WAYS as u64,
            });
        }
        if sets == 0 {
            return Err(ConfigError::Zero { what: "set count" });
        }
        if !ccd_common::is_power_of_two(sets as u64) {
            return Err(ConfigError::NotPowerOfTwo {
                what: "set count",
                value: sets as u64,
            });
        }
        if sets < BLOCK_SPAN {
            return Err(ConfigError::TooSmall {
                what: "set count",
                value: sets as u64,
                min: BLOCK_SPAN as u64,
            });
        }
        let mut offsets = vec![[0u8; 128]; ways];
        for tag in 0..128u64 {
            // A per-tag permutation of 0..BLOCK_SPAN (Fisher–Yates over a
            // seeded stream), with the value 0 swapped into position 0 so
            // way 0 always uses the plain base index.
            let mut perm: [u8; BLOCK_SPAN] = core::array::from_fn(|i| i as u8);
            let mut rng = SplitMix64::new(SplitMix64::mix(seed ^ (tag.wrapping_add(1) << 8)));
            for i in (1..BLOCK_SPAN).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                perm.swap(i, j);
            }
            if let Some(zero_at) = perm.iter().position(|&v| v == 0) {
                perm.swap(0, zero_at);
            }
            for (way, row) in offsets.iter_mut().enumerate() {
                row[tag as usize] = perm[way];
            }
        }
        Ok(TagAltFamily {
            offsets,
            sets,
            set_mask: sets as u64 - 1,
            salt: SplitMix64::mix(seed.wrapping_add(0x1ED_C0DE)),
        })
    }

    /// The strong base index shared by all ways (way 0's index).
    #[inline]
    fn base_index(&self, block: u64) -> usize {
        let salt = self.salt;
        let mixed = SplitMix64::mix(SplitMix64::mix(block ^ salt).wrapping_add(salt));
        (mixed & self.set_mask) as usize
    }

    /// Number of sets in one aligned candidate block.
    #[must_use]
    pub fn block_span(&self) -> usize {
        BLOCK_SPAN
    }

    /// The XOR offset of `way` for `tag` (high bit of the tag ignored).
    #[inline]
    #[must_use]
    pub fn offset(&self, way: usize, tag: u8) -> usize {
        usize::from(self.offsets[way][usize::from(tag & 0x7F)])
    }

    /// The candidate index of `to_way` for the occupant of
    /// `(from_way, from_index)` whose occupancy tag is `tag`.
    ///
    /// For an occupied slot (`tag == fingerprint(key)`) this equals
    /// `self.index(to_way, key)` exactly; in particular, for two fixed ways
    /// the mapping is an involution (`alt` of `alt` is the original index).
    ///
    /// # Panics
    ///
    /// Panics when `from_way` or `to_way` is out of range.
    #[inline]
    #[must_use]
    pub fn alt_index(&self, from_way: usize, from_index: usize, tag: u8, to_way: usize) -> usize {
        (from_index ^ self.offset(from_way, tag)) ^ self.offset(to_way, tag)
    }

    /// Writes the occupant's candidate index for *every* way into
    /// `out[..ways()]`, given only its current coordinates and tag — the
    /// displacement-loop counterpart of
    /// [`IndexHashFamily::index_all_into`], commuting with it exactly:
    /// deriving from any `(way, index_way(key), fingerprint(key))` yields
    /// the same indices as hashing `key`.
    ///
    /// # Panics
    ///
    /// Panics when `out` is shorter than [`IndexHashFamily::ways`] or
    /// `from_way` is out of range.
    #[inline]
    pub fn derive_all_into(&self, from_way: usize, from_index: usize, tag: u8, out: &mut [usize]) {
        assert!(
            out.len() >= self.offsets.len(),
            "index buffer of {} entries cannot hold {} ways",
            out.len(),
            self.offsets.len()
        );
        let t = usize::from(tag & 0x7F);
        let base = from_index ^ usize::from(self.offsets[from_way][t]);
        for (slot, row) in out.iter_mut().zip(&self.offsets) {
            *slot = base ^ usize::from(row[t]);
        }
    }
}

impl IndexHashFamily for TagAltFamily {
    fn ways(&self) -> usize {
        self.offsets.len()
    }

    fn sets(&self) -> usize {
        self.sets
    }

    #[inline]
    fn index(&self, way: usize, line: LineAddr) -> usize {
        let block = line.block_number();
        self.base_index(block) ^ self.offset(way, fingerprint(block))
    }

    #[inline]
    fn index_all_into(&self, line: LineAddr, out: &mut [usize]) {
        assert!(
            out.len() >= self.offsets.len(),
            "index buffer of {} entries cannot hold {} ways",
            out.len(),
            self.offsets.len()
        );
        let block = line.block_number();
        let base = self.base_index(block);
        let t = usize::from(fingerprint(block) & 0x7F);
        for (slot, row) in out.iter_mut().zip(&self.offsets) {
            *slot = base ^ usize::from(row[t]);
        }
    }

    fn logic_levels(&self) -> u32 {
        // The strong two-round base index dominates (see `StrongFamily`);
        // the fingerprint multiply overlaps it and the per-way XOR from a
        // 128-entry table adds one level on top.
        25
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccd_common::rng::{Rng64, SplitMix64 as Rng};

    #[test]
    fn construction_validates_parameters() {
        assert!(TagAltFamily::new(0, 64).is_err());
        assert!(TagAltFamily::new(MAX_WAYS + 1, 64).is_err());
        assert!(TagAltFamily::new(4, 0).is_err());
        assert!(TagAltFamily::new(4, 100).is_err());
        assert!(TagAltFamily::new(4, BLOCK_SPAN / 2).is_err(), "sub-block");
        assert!(TagAltFamily::new(4, BLOCK_SPAN).is_ok());
        assert!(TagAltFamily::new(MAX_WAYS, 1024).is_ok());
    }

    #[test]
    fn way_zero_is_the_base_index_and_candidates_share_a_block() {
        let f = TagAltFamily::new(4, 1024).unwrap();
        let mut rng = Rng::new(11);
        for _ in 0..500 {
            let block = rng.next_u64() >> 6;
            let line = LineAddr::from_block_number(block);
            let idx = f.all_indices(line);
            assert_eq!(idx[0], f.base_index(block), "way 0 must be unoffset");
            let block_base = idx[0] & !(BLOCK_SPAN - 1);
            for (way, &i) in idx.iter().enumerate() {
                assert_eq!(
                    i & !(BLOCK_SPAN - 1),
                    block_base,
                    "way {way} left the block"
                );
            }
            // Per-tag offsets are a permutation prefix: candidates distinct.
            for a in 0..idx.len() {
                for b in a + 1..idx.len() {
                    assert_ne!(idx[a], idx[b], "ways {a} and {b} collided");
                }
            }
        }
    }

    #[test]
    fn derivation_commutes_with_hashing_from_every_way() {
        let f = TagAltFamily::with_seed(4, 512, 99).unwrap();
        let mut rng = Rng::new(5);
        for _ in 0..1000 {
            let block = rng.next_u64() >> 6;
            let hashed = f.all_indices(LineAddr::from_block_number(block));
            let tag = fingerprint(block);
            for from_way in 0..4 {
                let mut derived = [0usize; 4];
                f.derive_all_into(from_way, hashed[from_way], tag, &mut derived);
                assert_eq!(derived.to_vec(), hashed, "derivation from way {from_way}");
            }
        }
    }

    #[test]
    fn alt_index_is_an_involution() {
        let f = TagAltFamily::new(2, 256).unwrap();
        let mut rng = Rng::new(21);
        for _ in 0..1000 {
            let block = rng.next_u64() >> 6;
            let tag = fingerprint(block);
            let i0 = f.index(0, LineAddr::from_block_number(block));
            let i1 = f.alt_index(0, i0, tag, 1);
            assert_eq!(f.alt_index(1, i1, tag, 0), i0, "alt∘alt must be identity");
            assert_eq!(i1, f.index(1, LineAddr::from_block_number(block)));
        }
    }

    #[test]
    fn different_seeds_give_different_functions() {
        let a = TagAltFamily::with_seed(2, 1024, 1).unwrap();
        let b = TagAltFamily::with_seed(2, 1024, 2).unwrap();
        let differs = (0..100u64).any(|block| {
            let line = LineAddr::from_block_number(block);
            a.index(0, line) != b.index(0, line)
        });
        assert!(differs);
    }

    #[test]
    fn base_index_is_uniform_and_avalanches() {
        let f = TagAltFamily::new(1, 1024).unwrap();
        let mut rng = Rng::new(3);
        let trials = 20_000;
        let changed = (0..trials)
            .filter(|_| {
                let block = rng.next_u64() >> 6;
                let bit = rng.next_below(40);
                f.base_index(block) != f.base_index(block ^ (1 << bit))
            })
            .count();
        let rate = changed as f64 / trials as f64;
        assert!(rate > 0.99, "avalanche rate too low: {rate}");
    }

    #[test]
    fn fingerprints_are_never_the_empty_tag() {
        let mut rng = Rng::new(0xF1);
        for _ in 0..10_000 {
            let fp = fingerprint(rng.next_u64());
            assert!(fp >= 0x80, "fingerprint {fp:#x} must have the high bit set");
        }
    }
}
