//! Strong (cryptographic-quality) per-way hash functions.
//!
//! Section 5.1 of the paper characterizes d-ary cuckoo hashing with "strong
//! cryptographic functions to index the ways" so that the measured behaviour
//! reflects cuckoo hashing itself rather than a particular hash family, and
//! Section 5.5 revisits them as an alternative to the skewing functions.
//!
//! We stand in for the paper's cryptographic functions with two rounds of
//! the SplitMix64 finalizer, salted per way.  The finalizer passes standard
//! avalanche tests (each input bit flips each output bit with probability
//! ≈ 0.5), which is the property the experiments rely on; actual
//! cryptographic strength is irrelevant here.

use crate::IndexHashFamily;
use ccd_common::rng::SplitMix64;
use ccd_common::{ConfigError, LineAddr};

/// Maximum number of ways supported by one strong family.
pub const MAX_WAYS: usize = 64;

/// A family of strong (well-mixed) per-way index hash functions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StrongFamily {
    salts: Vec<u64>,
    sets: usize,
    /// `sets - 1`: the set count is a power of two, so the reduction
    /// `mixed % sets` is a mask — no division on the hot path.
    set_mask: u64,
}

impl StrongFamily {
    /// Creates a family of `ways` strong hash functions over `sets` sets,
    /// using a fixed default seed (so directories built with the same shape
    /// hash identically).
    ///
    /// # Errors
    ///
    /// See [`StrongFamily::with_seed`].
    pub fn new(ways: usize, sets: usize) -> Result<Self, ConfigError> {
        Self::with_seed(ways, sets, 0x5EED_CAFE_F00D_D00D)
    }

    /// Creates a family of `ways` strong hash functions over `sets` sets,
    /// deriving per-way salts from `seed`.
    ///
    /// # Errors
    ///
    /// * [`ConfigError::Zero`] if `ways` is zero,
    /// * [`ConfigError::TooLarge`] if `ways` exceeds [`MAX_WAYS`],
    /// * [`ConfigError::NotPowerOfTwo`] if `sets` is not a power of two,
    /// * [`ConfigError::Zero`] if `sets` is zero.
    pub fn with_seed(ways: usize, sets: usize, seed: u64) -> Result<Self, ConfigError> {
        if ways == 0 {
            return Err(ConfigError::Zero { what: "ways" });
        }
        if ways > MAX_WAYS {
            return Err(ConfigError::TooLarge {
                what: "ways",
                value: ways as u64,
                max: MAX_WAYS as u64,
            });
        }
        if sets == 0 {
            return Err(ConfigError::Zero { what: "set count" });
        }
        if !ccd_common::is_power_of_two(sets as u64) {
            return Err(ConfigError::NotPowerOfTwo {
                what: "set count",
                value: sets as u64,
            });
        }
        // Derive distinct, well-separated salts for each way.
        let salts = (0..ways as u64)
            .map(|w| SplitMix64::mix(seed ^ SplitMix64::mix(w.wrapping_add(1))))
            .collect();
        Ok(StrongFamily {
            salts,
            sets,
            set_mask: sets as u64 - 1,
        })
    }
}

impl IndexHashFamily for StrongFamily {
    fn ways(&self) -> usize {
        self.salts.len()
    }

    fn sets(&self) -> usize {
        self.sets
    }

    #[inline]
    fn index(&self, way: usize, line: LineAddr) -> usize {
        let salt = self.salts[way];
        // Two finalizer rounds with a way-specific salt between them.
        let mixed = SplitMix64::mix(SplitMix64::mix(line.block_number() ^ salt).wrapping_add(salt));
        (mixed & self.set_mask) as usize
    }

    #[inline]
    fn index_all_into(&self, line: LineAddr, out: &mut [usize]) {
        assert!(
            out.len() >= self.salts.len(),
            "index buffer of {} entries cannot hold {} ways",
            out.len(),
            self.salts.len()
        );
        let block = line.block_number();
        for (slot, &salt) in out.iter_mut().zip(&self.salts) {
            let mixed = SplitMix64::mix(SplitMix64::mix(block ^ salt).wrapping_add(salt));
            *slot = (mixed & self.set_mask) as usize;
        }
    }

    fn logic_levels(&self) -> u32 {
        // Two 64-bit multiplies plus xors/shifts: a multiplier is on the
        // order of a dozen logic levels, hence the paper's "complex hardware
        // implementation" remark for strong functions.
        24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccd_common::rng::{Rng64, SplitMix64 as Rng};

    #[test]
    fn construction_validates_parameters() {
        assert!(StrongFamily::new(0, 64).is_err());
        assert!(StrongFamily::new(65, 64).is_err());
        assert!(StrongFamily::new(4, 0).is_err());
        assert!(StrongFamily::new(4, 100).is_err());
        assert!(StrongFamily::new(8, 128).is_ok());
    }

    #[test]
    fn different_seeds_give_different_functions() {
        let a = StrongFamily::with_seed(2, 1024, 1).unwrap();
        let b = StrongFamily::with_seed(2, 1024, 2).unwrap();
        let mut differs = false;
        for block in 0..100u64 {
            let line = LineAddr::from_block_number(block);
            if a.index(0, line) != b.index(0, line) {
                differs = true;
                break;
            }
        }
        assert!(differs);
    }

    #[test]
    fn ways_behave_independently() {
        // Count how often way 0 and way 1 agree; should be close to 1/sets.
        let f = StrongFamily::new(2, 256).unwrap();
        let mut rng = Rng::new(77);
        let trials = 50_000;
        let agreements = (0..trials)
            .filter(|_| {
                let line = LineAddr::from_block_number(rng.next_u64() >> 6);
                f.index(0, line) == f.index(1, line)
            })
            .count();
        let rate = agreements as f64 / trials as f64;
        assert!((rate - 1.0 / 256.0).abs() < 0.005, "agreement rate {rate}");
    }

    #[test]
    fn avalanche_on_single_bit_flips() {
        // Flipping one input bit should change the index about
        // (sets-1)/sets of the time.
        let f = StrongFamily::new(1, 1024).unwrap();
        let mut rng = Rng::new(3);
        let mut changed = 0usize;
        let trials = 20_000;
        for _ in 0..trials {
            let block = rng.next_u64() >> 6;
            let bit = rng.next_below(40);
            let a = f.index(0, LineAddr::from_block_number(block));
            let b = f.index(0, LineAddr::from_block_number(block ^ (1 << bit)));
            if a != b {
                changed += 1;
            }
        }
        let rate = changed as f64 / trials as f64;
        assert!(rate > 0.99, "avalanche rate too low: {rate}");
    }

    #[test]
    fn default_seed_is_stable() {
        // Regression guard: the default-seeded family must not silently
        // change, as stored experiment results depend on it.
        let f = StrongFamily::new(4, 512).unwrap();
        let line = LineAddr::from_block_number(0x1_0000);
        let indices = f.all_indices(line);
        assert_eq!(indices, f.all_indices(line));
        assert_eq!(indices.len(), 4);
    }
}
