//! Seznec–Bodin skewing hash functions.
//!
//! The paper's hardware uses "the skewing hash functions from Seznec and
//! Bodin" (Section 5.5): each way's index is computed from two (or more)
//! bit-fields of the block address combined with XOR after a per-way
//! bit-permutation.  The permutation used here is the classic one from the
//! skewed-associative cache literature: a circular right-rotation of the
//! first field by the way number, which requires only wires plus one level
//! of XOR gates per output bit.
//!
//! Formally, for a table of `2^n` sets and block address `A`, split `A`
//! (above the offset bits) into consecutive `n`-bit fields `A1`, `A2`,
//! `A3`, …; way `i` uses
//!
//! ```text
//! h_i(A) = rot_i(A1) XOR rot_{2i}(A2) XOR A3 XOR A4 ...
//! ```
//!
//! where `rot_k` is a k-bit circular rotation within the n-bit field.  Using
//! a different rotation per way de-correlates the ways while folding all
//! address bits into every index (so two blocks conflict in one way only if
//! a specific XOR of their address fields matches, which is unlikely to hold
//! simultaneously for several ways).

use crate::IndexHashFamily;
use ccd_common::{ceil_log2, ConfigError, LineAddr};

/// Maximum number of ways supported by one skewing family.
pub const MAX_WAYS: usize = 16;

/// The Seznec–Bodin-style skewing function family.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SkewingFamily {
    ways: usize,
    sets: usize,
    index_bits: u32,
    /// Per-way `(rot(A1), rot(A2))` rotation amounts, pre-reduced modulo the
    /// field width so the per-index hot path never divides.
    rotations: Vec<(u32, u32)>,
}

impl SkewingFamily {
    /// Creates a family of `ways` skewing functions over `sets` sets.
    ///
    /// # Errors
    ///
    /// * [`ConfigError::Zero`] if `ways` is zero,
    /// * [`ConfigError::TooLarge`] if `ways` exceeds [`MAX_WAYS`],
    /// * [`ConfigError::NotPowerOfTwo`] if `sets` is not a power of two,
    /// * [`ConfigError::TooSmall`] if `sets < 2` (a single set cannot be
    ///   meaningfully skewed).
    pub fn new(ways: usize, sets: usize) -> Result<Self, ConfigError> {
        if ways == 0 {
            return Err(ConfigError::Zero { what: "ways" });
        }
        if ways > MAX_WAYS {
            return Err(ConfigError::TooLarge {
                what: "ways",
                value: ways as u64,
                max: MAX_WAYS as u64,
            });
        }
        if !ccd_common::is_power_of_two(sets as u64) {
            return Err(ConfigError::NotPowerOfTwo {
                what: "set count",
                value: sets as u64,
            });
        }
        if sets < 2 {
            return Err(ConfigError::TooSmall {
                what: "set count",
                value: sets as u64,
                min: 2,
            });
        }
        let index_bits = ceil_log2(sets as u64);
        let rotations = (0..ways as u32)
            .map(|way| (way % index_bits, (2 * way) % index_bits))
            .collect();
        Ok(SkewingFamily {
            ways,
            sets,
            index_bits,
            rotations,
        })
    }

    /// Rotates the low `bits` bits of `field` right by `amount`
    /// (pre-reduced: `amount < bits`).
    #[inline]
    fn rotate_field(field: u64, amount: u32, bits: u32) -> u64 {
        debug_assert!(amount < bits, "rotation amounts are pre-reduced");
        let mask = (1u64 << bits) - 1;
        let field = field & mask;
        if amount == 0 {
            field
        } else {
            ((field >> amount) | (field << (bits - amount))) & mask
        }
    }
}

impl IndexHashFamily for SkewingFamily {
    fn ways(&self) -> usize {
        self.ways
    }

    fn sets(&self) -> usize {
        self.sets
    }

    #[inline]
    fn index(&self, way: usize, line: LineAddr) -> usize {
        assert!(
            way < self.ways,
            "way {way} out of range (ways = {})",
            self.ways
        );
        let n = self.index_bits;
        let mask = (1u64 << n) - 1;
        let mut remaining = line.block_number();
        // First field: rotated by the way number.
        let a1 = remaining & mask;
        remaining >>= n;
        // Second field: rotated by twice the way number to decorrelate.
        let a2 = remaining & mask;
        remaining >>= n;
        let (rot1, rot2) = self.rotations[way];
        let mut h = Self::rotate_field(a1, rot1, n) ^ Self::rotate_field(a2, rot2, n);
        // Fold any remaining high-order fields straight in so that every
        // address bit participates in every index.
        while remaining != 0 {
            h ^= remaining & mask;
            remaining >>= n;
        }
        (h & mask) as usize
    }

    #[inline]
    fn index_all_into(&self, line: LineAddr, out: &mut [usize]) {
        assert!(
            out.len() >= self.ways,
            "index buffer of {} entries cannot hold {} ways",
            out.len(),
            self.ways
        );
        // Decompose the address into its fields once; only the per-way
        // rotations differ between ways (XOR is associative, so folding the
        // high-order fields first yields the same index as `index`).  Each
        // field is doubled (`a | a << n`) so that an n-bit right-rotation by
        // `k < n` collapses to a single shift: `(doubled >> k) & mask` —
        // branch-free and one instruction per rotation.
        let n = self.index_bits;
        let mask = (1u64 << n) - 1;
        let mut remaining = line.block_number();
        let a1 = remaining & mask;
        remaining >>= n;
        let a2 = remaining & mask;
        remaining >>= n;
        let mut high = 0u64;
        while remaining != 0 {
            high ^= remaining & mask;
            remaining >>= n;
        }
        if n <= 32 {
            let a1d = a1 | (a1 << n);
            let a2d = a2 | (a2 << n);
            for (slot, &(rot1, rot2)) in out.iter_mut().zip(&self.rotations) {
                *slot = ((((a1d >> rot1) ^ (a2d >> rot2)) & mask) ^ high) as usize;
            }
        } else {
            // Doubling would overflow 64 bits; no real directory has 2^32
            // sets, but stay correct anyway.
            for (slot, &(rot1, rot2)) in out.iter_mut().zip(&self.rotations) {
                let h = Self::rotate_field(a1, rot1, n) ^ Self::rotate_field(a2, rot2, n) ^ high;
                *slot = (h & mask) as usize;
            }
        }
    }

    fn logic_levels(&self) -> u32 {
        // One XOR tree over ceil(48 / index_bits) fields: log2 of the number
        // of inputs, with rotations being free (wiring only).  This is the
        // "several levels of logic" the paper cites.
        let fields = ccd_common::PHYSICAL_ADDRESS_BITS.div_ceil(self.index_bits);
        ceil_log2(u64::from(fields)).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_parameters() {
        assert!(SkewingFamily::new(0, 64).is_err());
        assert!(SkewingFamily::new(17, 64).is_err());
        assert!(SkewingFamily::new(4, 63).is_err());
        assert!(SkewingFamily::new(4, 1).is_err());
        assert!(SkewingFamily::new(4, 64).is_ok());
    }

    #[test]
    fn indices_in_range_for_extreme_addresses() {
        let f = SkewingFamily::new(8, 4096).unwrap();
        for block in [0u64, 1, u64::MAX >> 6, 0xffff_ffff, 0x8000_0000_0000 >> 6] {
            for way in 0..8 {
                let idx = f.index(way, LineAddr::from_block_number(block));
                assert!(idx < 4096);
            }
        }
    }

    #[test]
    fn deterministic_per_way() {
        let f = SkewingFamily::new(4, 512).unwrap();
        let line = LineAddr::from_block_number(0xabcdef0);
        for way in 0..4 {
            assert_eq!(f.index(way, line), f.index(way, line));
        }
    }

    #[test]
    fn rotation_wraps_correctly() {
        // rot of 0b0001 by 1 in a 4-bit field is 0b1000; rot by 0 is the
        // identity.  Amounts arrive pre-reduced modulo the field width.
        assert_eq!(SkewingFamily::rotate_field(0b0001, 1, 4), 0b1000);
        assert_eq!(SkewingFamily::rotate_field(0b1001, 3, 4), 0b0011);
        assert_eq!(SkewingFamily::rotate_field(0b1001, 0, 4), 0b1001);
    }

    #[test]
    fn precomputed_rotations_match_the_modulo_definition() {
        // The per-way amounts are `way % n` and `2·way % n` — the values the
        // seed computed inline with a modulo on every index() call.
        let f = SkewingFamily::new(16, 256).unwrap(); // n = 8
        for (way, &(r1, r2)) in f.rotations.iter().enumerate() {
            assert_eq!(r1, way as u32 % 8);
            assert_eq!(r2, (2 * way) as u32 % 8);
        }
    }

    #[test]
    fn conflicting_low_bits_are_spread_by_high_bits() {
        // Classic skewed-associativity property: addresses that collide in
        // a conventional index (same low bits) are separated when their
        // high-order bits differ.
        let f = SkewingFamily::new(4, 256).unwrap();
        let base = 0x55u64; // common low index field
        let lines: Vec<LineAddr> = (0..64u64)
            .map(|hi| LineAddr::from_block_number(base | (hi << 20)))
            .collect();
        for way in 0..4 {
            let mut indices: Vec<usize> = lines.iter().map(|&l| f.index(way, l)).collect();
            indices.sort_unstable();
            indices.dedup();
            assert!(
                indices.len() > 16,
                "way {way} mapped 64 conflicting lines to only {} sets",
                indices.len()
            );
        }
    }

    #[test]
    fn logic_levels_are_small() {
        let f = SkewingFamily::new(4, 512).unwrap();
        assert!(f.logic_levels() <= 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_way_panics() {
        let f = SkewingFamily::new(2, 64).unwrap();
        let _ = f.index(2, LineAddr::from_block_number(1));
    }
}
