//! Multiply-shift index hash functions.
//!
//! A middle ground between the skewing functions (cheapest, weakest) and the
//! strong mixers (most expensive, strongest): each way multiplies the block
//! address by a fixed odd 64-bit constant and keeps the top index bits.
//! Multiply-shift hashing is 2-universal for random odd multipliers, which
//! makes this family a useful control in the hash-function-selection study
//! (Section 5.5).

use crate::IndexHashFamily;
use ccd_common::rng::SplitMix64;
use ccd_common::{ceil_log2, ConfigError, LineAddr};

/// Maximum number of ways supported by one multiply-shift family.
pub const MAX_WAYS: usize = 64;

/// A family of per-way multiply-shift hash functions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MultiplyShiftFamily {
    multipliers: Vec<u64>,
    sets: usize,
    shift: u32,
}

impl MultiplyShiftFamily {
    /// Creates a family of `ways` multiply-shift functions over `sets` sets
    /// with a fixed default seed.
    ///
    /// # Errors
    ///
    /// See [`MultiplyShiftFamily::with_seed`].
    pub fn new(ways: usize, sets: usize) -> Result<Self, ConfigError> {
        Self::with_seed(ways, sets, 0x9E37_79B9_7F4A_7C15)
    }

    /// Creates a family of `ways` multiply-shift functions over `sets` sets,
    /// deriving the odd multipliers from `seed`.
    ///
    /// # Errors
    ///
    /// * [`ConfigError::Zero`] if `ways` or `sets` is zero,
    /// * [`ConfigError::TooLarge`] if `ways` exceeds [`MAX_WAYS`],
    /// * [`ConfigError::NotPowerOfTwo`] if `sets` is not a power of two,
    /// * [`ConfigError::TooSmall`] if `sets < 2`.
    pub fn with_seed(ways: usize, sets: usize, seed: u64) -> Result<Self, ConfigError> {
        if ways == 0 {
            return Err(ConfigError::Zero { what: "ways" });
        }
        if ways > MAX_WAYS {
            return Err(ConfigError::TooLarge {
                what: "ways",
                value: ways as u64,
                max: MAX_WAYS as u64,
            });
        }
        if sets == 0 {
            return Err(ConfigError::Zero { what: "set count" });
        }
        if !ccd_common::is_power_of_two(sets as u64) {
            return Err(ConfigError::NotPowerOfTwo {
                what: "set count",
                value: sets as u64,
            });
        }
        if sets < 2 {
            return Err(ConfigError::TooSmall {
                what: "set count",
                value: sets as u64,
                min: 2,
            });
        }
        let index_bits = ceil_log2(sets as u64);
        let multipliers = (0..ways as u64)
            .map(|w| SplitMix64::mix(seed.wrapping_add(w.wrapping_mul(0xA5A5_5A5A_1234_5678))) | 1)
            .collect();
        Ok(MultiplyShiftFamily {
            multipliers,
            sets,
            shift: 64 - index_bits,
        })
    }
}

impl IndexHashFamily for MultiplyShiftFamily {
    fn ways(&self) -> usize {
        self.multipliers.len()
    }

    fn sets(&self) -> usize {
        self.sets
    }

    #[inline]
    fn index(&self, way: usize, line: LineAddr) -> usize {
        let m = self.multipliers[way];
        (line.block_number().wrapping_mul(m) >> self.shift) as usize
    }

    #[inline]
    fn index_all_into(&self, line: LineAddr, out: &mut [usize]) {
        assert!(
            out.len() >= self.multipliers.len(),
            "index buffer of {} entries cannot hold {} ways",
            out.len(),
            self.multipliers.len()
        );
        let block = line.block_number();
        for (slot, &m) in out.iter_mut().zip(&self.multipliers) {
            *slot = (block.wrapping_mul(m) >> self.shift) as usize;
        }
    }

    fn logic_levels(&self) -> u32 {
        // One 64-bit multiply: roughly a dozen logic levels.
        12
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_parameters() {
        assert!(MultiplyShiftFamily::new(0, 64).is_err());
        assert!(MultiplyShiftFamily::new(65, 64).is_err());
        assert!(MultiplyShiftFamily::new(4, 0).is_err());
        assert!(MultiplyShiftFamily::new(4, 3).is_err());
        assert!(MultiplyShiftFamily::new(4, 1).is_err());
        assert!(MultiplyShiftFamily::new(4, 4096).is_ok());
    }

    #[test]
    fn multipliers_are_odd_and_distinct() {
        let f = MultiplyShiftFamily::new(8, 256).unwrap();
        for (i, m) in f.multipliers.iter().enumerate() {
            assert_eq!(m % 2, 1, "multiplier {i} must be odd");
            for other in &f.multipliers[i + 1..] {
                assert_ne!(m, other);
            }
        }
    }

    #[test]
    fn index_uses_high_bits() {
        // Multiply-shift keeps the top bits, so consecutive block numbers
        // should not land in consecutive sets (unlike a modulo index).
        let f = MultiplyShiftFamily::new(1, 1024).unwrap();
        let a = f.index(0, LineAddr::from_block_number(1000));
        let b = f.index(0, LineAddr::from_block_number(1001));
        assert!(a < 1024 && b < 1024);
        // Their difference is essentially random; just assert range and
        // determinism here.
        assert_eq!(a, f.index(0, LineAddr::from_block_number(1000)));
    }

    #[test]
    fn seeded_families_are_reproducible() {
        let a = MultiplyShiftFamily::with_seed(4, 512, 42).unwrap();
        let b = MultiplyShiftFamily::with_seed(4, 512, 42).unwrap();
        assert_eq!(a, b);
    }
}
