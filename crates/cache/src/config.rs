//! Cache geometry configuration.

use ccd_common::{BlockGeometry, ConfigError};

/// Geometry of one set-associative cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets.
    pub sets: usize,
    /// Number of ways per set.
    pub ways: usize,
    /// Cache-block size in bytes.
    pub block_bytes: u64,
}

impl CacheConfig {
    /// Creates a configuration directly from sets × ways × block size.
    #[must_use]
    pub const fn new(sets: usize, ways: usize, block_bytes: u64) -> Self {
        CacheConfig {
            sets,
            ways,
            block_bytes,
        }
    }

    /// Creates a configuration from a total capacity in bytes.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the parameters do not divide evenly
    /// into a power-of-two number of sets, or when any parameter is zero.
    pub fn from_capacity(
        capacity_bytes: u64,
        ways: usize,
        block_bytes: u64,
    ) -> Result<Self, ConfigError> {
        if ways == 0 {
            return Err(ConfigError::Zero { what: "ways" });
        }
        if block_bytes == 0 {
            return Err(ConfigError::Zero { what: "block size" });
        }
        if capacity_bytes == 0 {
            return Err(ConfigError::Zero { what: "capacity" });
        }
        let frames = capacity_bytes / block_bytes;
        if frames * block_bytes != capacity_bytes {
            return Err(ConfigError::Inconsistent {
                what: "capacity is not a multiple of the block size",
            });
        }
        let sets = frames / ways as u64;
        if sets * ways as u64 != frames {
            return Err(ConfigError::Inconsistent {
                what: "capacity is not a multiple of ways x block size",
            });
        }
        let config = CacheConfig::new(sets as usize, ways, block_bytes);
        config.validate()?;
        Ok(config)
    }

    /// The paper's L1 configuration (Table 1): 64 KB, 2 ways, 64-byte
    /// blocks — used for both the I and D caches of each core.
    #[must_use]
    pub fn l1_64k() -> Self {
        CacheConfig::new(512, 2, 64)
    }

    /// The paper's private-L2 configuration (Table 1): 1 MB per core,
    /// 16 ways, 64-byte blocks.
    #[must_use]
    pub fn l2_1m() -> Self {
        CacheConfig::new(1024, 16, 64)
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.frames() as u64 * self.block_bytes
    }

    /// Total number of block frames.
    #[must_use]
    pub fn frames(&self) -> usize {
        self.sets * self.ways
    }

    /// Block geometry for this cache.
    ///
    /// # Panics
    ///
    /// Panics if the block size is not a power of two (prevented by
    /// [`CacheConfig::validate`]).
    #[must_use]
    pub fn block_geometry(&self) -> BlockGeometry {
        BlockGeometry::new(self.block_bytes)
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when any parameter is zero or `sets` /
    /// `block_bytes` are not powers of two.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.sets == 0 {
            return Err(ConfigError::Zero { what: "set count" });
        }
        if self.ways == 0 {
            return Err(ConfigError::Zero { what: "ways" });
        }
        if !ccd_common::is_power_of_two(self.sets as u64) {
            return Err(ConfigError::NotPowerOfTwo {
                what: "set count",
                value: self.sets as u64,
            });
        }
        BlockGeometry::try_new(self.block_bytes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_presets_match_table_1() {
        let l1 = CacheConfig::l1_64k();
        assert_eq!(l1.capacity_bytes(), 64 * 1024);
        assert_eq!(l1.ways, 2);
        assert_eq!(l1.block_bytes, 64);
        assert_eq!(l1.frames(), 1024);
        assert!(l1.validate().is_ok());

        let l2 = CacheConfig::l2_1m();
        assert_eq!(l2.capacity_bytes(), 1024 * 1024);
        assert_eq!(l2.ways, 16);
        assert_eq!(l2.frames(), 16_384);
        assert!(l2.validate().is_ok());
    }

    #[test]
    fn from_capacity_round_trips() {
        let c = CacheConfig::from_capacity(64 * 1024, 2, 64).unwrap();
        assert_eq!(c, CacheConfig::l1_64k());
        let c = CacheConfig::from_capacity(1024 * 1024, 16, 64).unwrap();
        assert_eq!(c, CacheConfig::l2_1m());
    }

    #[test]
    fn from_capacity_rejects_bad_shapes() {
        assert!(CacheConfig::from_capacity(0, 2, 64).is_err());
        assert!(CacheConfig::from_capacity(64 * 1024, 0, 64).is_err());
        assert!(CacheConfig::from_capacity(64 * 1024, 2, 0).is_err());
        assert!(CacheConfig::from_capacity(100, 2, 64).is_err());
        // 3 ways over 64KB of 64B blocks leaves a non-integral set count.
        assert!(CacheConfig::from_capacity(64 * 1024, 3, 64).is_err());
        // 96KB / 64B / 2 = 768 sets: not a power of two.
        assert!(CacheConfig::from_capacity(96 * 1024, 2, 64).is_err());
    }

    #[test]
    fn validate_checks_every_field() {
        assert!(CacheConfig::new(0, 2, 64).validate().is_err());
        assert!(CacheConfig::new(512, 0, 64).validate().is_err());
        assert!(CacheConfig::new(512, 2, 48).validate().is_err());
        assert!(CacheConfig::new(100, 2, 64).validate().is_err());
        assert!(
            CacheConfig::new(512, 3, 64).validate().is_ok(),
            "odd way counts are fine"
        );
    }

    #[test]
    fn block_geometry_matches_block_size() {
        let c = CacheConfig::l1_64k();
        assert_eq!(c.block_geometry().block_bytes(), 64);
        assert_eq!(c.block_geometry().offset_bits(), 6);
    }
}
