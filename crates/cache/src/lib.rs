//! Set-associative private-cache models.
//!
//! The coherence directories track blocks held in *private* caches, so the
//! trace-driven simulator needs a functional model of those caches: which
//! blocks are resident, which block a fill displaces, and whether the victim
//! was dirty.  This crate provides that model:
//!
//! * [`CacheConfig`] — geometry (capacity/ways/block size) with presets for
//!   the paper's Table 1 parameters (split 64 KB 2-way L1s, 1 MB 16-way
//!   private L2s),
//! * [`Cache`] — a set-associative, write-back/write-allocate cache with LRU
//!   replacement, per-line MESI-lite coherence state, and eviction
//!   reporting,
//! * [`CacheStats`] — hit/miss/eviction counters.
//!
//! Timing is deliberately not modelled: the paper's directory results depend
//! only on the *sequence* of fills, upgrades and evictions each cache
//! generates, which a functional model reproduces.
//!
//! # Example
//!
//! ```
//! use ccd_cache::{AccessOutcome, Cache, CacheConfig};
//! use ccd_common::LineAddr;
//!
//! let mut l1 = Cache::new(CacheConfig::l1_64k())?;
//! let line = LineAddr::from_block_number(42);
//! let outcome = l1.access_read(line);
//! assert!(matches!(outcome, AccessOutcome::Miss { .. }));
//! assert!(l1.contains(line));
//! # Ok::<(), ccd_common::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod config;

pub use cache::{AccessOutcome, Cache, CacheStats, CoherenceState, Eviction};
pub use config::CacheConfig;
