//! The set-associative cache model.

use crate::CacheConfig;
use ccd_common::stats::Counter;
use ccd_common::{ConfigError, LineAddr};

/// MESI-lite coherence state of a resident block.
///
/// Only the states that change directory-visible behaviour are modelled:
/// a block is either readable by possibly many caches (`Shared`) or
/// writable by exactly one (`Modified`).  Exclusive-clean is folded into
/// `Shared` because, from the directory's perspective, the transition that
/// matters is the upgrade that invalidates other copies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CoherenceState {
    /// Readable copy; other caches may also hold the block.
    Shared,
    /// Writable, dirty copy; no other cache holds the block.
    Modified,
}

/// A block displaced by a fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Eviction {
    /// The displaced block.
    pub line: LineAddr,
    /// `true` when the block was dirty and must be written back.
    pub dirty: bool,
}

/// The outcome of a cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The block was resident with sufficient permission.
    Hit,
    /// The block was resident in `Shared` state but the access was a write;
    /// the caller must obtain exclusive permission from the directory.
    UpgradeMiss,
    /// The block was not resident; it has been filled, possibly displacing a
    /// victim that the caller must report to the directory.
    Miss {
        /// The block displaced to make room, if the set was full.
        victim: Option<Eviction>,
    },
}

impl AccessOutcome {
    /// `true` for any kind of miss (fill or upgrade).
    #[must_use]
    pub fn is_miss(&self) -> bool {
        !matches!(self, AccessOutcome::Hit)
    }
}

/// Hit/miss/eviction counters for one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: Counter,
    /// Accesses that hit with sufficient permission.
    pub hits: Counter,
    /// Fill misses.
    pub misses: Counter,
    /// Write accesses that hit a `Shared` block and needed an upgrade.
    pub upgrade_misses: Counter,
    /// Blocks displaced by fills.
    pub evictions: Counter,
    /// Displaced blocks that were dirty.
    pub writebacks: Counter,
    /// Blocks invalidated by external (coherence) requests.
    pub invalidations: Counter,
}

impl CacheStats {
    /// Miss rate over all accesses (fill misses only).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        self.misses.fraction_of(self.accesses.get())
    }
}

#[derive(Clone, Debug)]
struct Frame {
    line: LineAddr,
    state: CoherenceState,
    last_use: u64,
}

/// A set-associative, write-back, write-allocate cache with LRU replacement.
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    frames: Vec<Option<Frame>>,
    tick: u64,
    valid: usize,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Errors
    ///
    /// Returns the geometry's [`ConfigError`] when it is invalid.
    pub fn new(config: CacheConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        Ok(Cache {
            config,
            frames: (0..config.frames()).map(|_| None).collect(),
            tick: 0,
            valid: 0,
            stats: CacheStats::default(),
        })
    }

    /// The cache geometry.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the statistics (not the contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of resident blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.valid
    }

    /// `true` when no blocks are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.valid == 0
    }

    /// Fraction of frames currently holding valid blocks.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        self.valid as f64 / self.config.frames() as f64
    }

    fn set_of(&self, line: LineAddr) -> usize {
        (line.block_number() % self.config.sets as u64) as usize
    }

    fn frame_range(&self, set: usize) -> std::ops::Range<usize> {
        set * self.config.ways..(set + 1) * self.config.ways
    }

    fn find_frame(&self, line: LineAddr) -> Option<usize> {
        let set = self.set_of(line);
        self.frame_range(set)
            .find(|&f| matches!(&self.frames[f], Some(fr) if fr.line == line))
    }

    /// `true` when `line` is resident.
    #[must_use]
    pub fn contains(&self, line: LineAddr) -> bool {
        self.find_frame(line).is_some()
    }

    /// Returns the coherence state of `line`, if resident.
    #[must_use]
    pub fn state_of(&self, line: LineAddr) -> Option<CoherenceState> {
        self.find_frame(line)
            .map(|f| self.frames[f].as_ref().expect("frame is valid").state)
    }

    /// Iterates over all resident lines and their states.
    pub fn resident_lines(&self) -> impl Iterator<Item = (LineAddr, CoherenceState)> + '_ {
        self.frames
            .iter()
            .filter_map(|f| f.as_ref().map(|fr| (fr.line, fr.state)))
    }

    fn touch(&mut self, frame: usize) {
        self.tick += 1;
        self.frames[frame]
            .as_mut()
            .expect("frame is valid")
            .last_use = self.tick;
    }

    /// Fills `line` into its set in the given state, returning the displaced
    /// victim when the set was full.
    fn fill(&mut self, line: LineAddr, state: CoherenceState) -> Option<Eviction> {
        let set = self.set_of(line);
        self.tick += 1;
        let tick = self.tick;
        let range = self.frame_range(set);

        // Prefer an invalid frame.
        if let Some(frame) = range.clone().find(|&f| self.frames[f].is_none()) {
            self.frames[frame] = Some(Frame {
                line,
                state,
                last_use: tick,
            });
            self.valid += 1;
            return None;
        }
        // Set full: evict the LRU frame.
        let frame = range
            .min_by_key(|&f| self.frames[f].as_ref().map_or(0, |fr| fr.last_use))
            .expect("ways > 0");
        let victim = self.frames[frame]
            .replace(Frame {
                line,
                state,
                last_use: tick,
            })
            .expect("full set has valid frames");
        self.stats.evictions.incr();
        let dirty = victim.state == CoherenceState::Modified;
        if dirty {
            self.stats.writebacks.incr();
        }
        Some(Eviction {
            line: victim.line,
            dirty,
        })
    }

    /// Performs a read (or instruction-fetch) access to `line`.
    pub fn access_read(&mut self, line: LineAddr) -> AccessOutcome {
        self.stats.accesses.incr();
        if let Some(frame) = self.find_frame(line) {
            self.stats.hits.incr();
            self.touch(frame);
            return AccessOutcome::Hit;
        }
        self.stats.misses.incr();
        let victim = self.fill(line, CoherenceState::Shared);
        AccessOutcome::Miss { victim }
    }

    /// Performs a write access to `line`.
    ///
    /// A hit on a `Shared` block is reported as [`AccessOutcome::UpgradeMiss`]
    /// so the caller can obtain exclusive permission from the directory; the
    /// block is promoted to `Modified` locally.
    pub fn access_write(&mut self, line: LineAddr) -> AccessOutcome {
        self.stats.accesses.incr();
        if let Some(frame) = self.find_frame(line) {
            self.touch(frame);
            let entry = self.frames[frame].as_mut().expect("frame is valid");
            return match entry.state {
                CoherenceState::Modified => {
                    self.stats.hits.incr();
                    AccessOutcome::Hit
                }
                CoherenceState::Shared => {
                    entry.state = CoherenceState::Modified;
                    self.stats.upgrade_misses.incr();
                    AccessOutcome::UpgradeMiss
                }
            };
        }
        self.stats.misses.incr();
        let victim = self.fill(line, CoherenceState::Modified);
        AccessOutcome::Miss { victim }
    }

    /// Invalidates `line` (external coherence request).  Returns the state
    /// the block was in, or `None` if it was not resident.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<CoherenceState> {
        let frame = self.find_frame(line)?;
        let entry = self.frames[frame].take().expect("frame is valid");
        self.valid -= 1;
        self.stats.invalidations.incr();
        Some(entry.state)
    }

    /// Downgrades `line` to `Shared` (another cache read a modified block).
    /// Returns `true` when the block was resident and modified.
    pub fn downgrade(&mut self, line: LineAddr) -> bool {
        if let Some(frame) = self.find_frame(line) {
            let entry = self.frames[frame].as_mut().expect("frame is valid");
            let was_modified = entry.state == CoherenceState::Modified;
            entry.state = CoherenceState::Shared;
            was_modified
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::from_block_number(n)
    }

    fn tiny() -> Cache {
        // 2 sets x 2 ways.
        Cache::new(CacheConfig::new(2, 2, 64)).unwrap()
    }

    #[test]
    fn construction_validates_geometry() {
        assert!(Cache::new(CacheConfig::new(0, 2, 64)).is_err());
        assert!(Cache::new(CacheConfig::new(2, 2, 63)).is_err());
        assert!(Cache::new(CacheConfig::l1_64k()).is_ok());
    }

    #[test]
    fn read_miss_then_hit() {
        let mut c = tiny();
        assert!(matches!(
            c.access_read(line(0)),
            AccessOutcome::Miss { victim: None }
        ));
        assert!(matches!(c.access_read(line(0)), AccessOutcome::Hit));
        assert_eq!(c.state_of(line(0)), Some(CoherenceState::Shared));
        assert_eq!(c.stats().hits.get(), 1);
        assert_eq!(c.stats().misses.get(), 1);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn write_miss_installs_modified() {
        let mut c = tiny();
        assert!(c.access_write(line(3)).is_miss());
        assert_eq!(c.state_of(line(3)), Some(CoherenceState::Modified));
        assert!(matches!(c.access_write(line(3)), AccessOutcome::Hit));
    }

    #[test]
    fn write_hit_on_shared_is_an_upgrade() {
        let mut c = tiny();
        c.access_read(line(5));
        let outcome = c.access_write(line(5));
        assert_eq!(outcome, AccessOutcome::UpgradeMiss);
        assert_eq!(c.state_of(line(5)), Some(CoherenceState::Modified));
        assert_eq!(c.stats().upgrade_misses.get(), 1);
        // Subsequent writes hit.
        assert!(matches!(c.access_write(line(5)), AccessOutcome::Hit));
    }

    #[test]
    fn lru_eviction_reports_victim_and_dirtiness() {
        let mut c = tiny();
        // Lines 0, 2, 4 map to set 0 (2 sets).
        c.access_write(line(0)); // modified
        c.access_read(line(2));
        // Touch 0 so 2 is LRU.
        c.access_read(line(0));
        let outcome = c.access_read(line(4));
        match outcome {
            AccessOutcome::Miss { victim: Some(v) } => {
                assert_eq!(v.line, line(2));
                assert!(!v.dirty);
            }
            other => panic!("expected eviction, got {other:?}"),
        }
        // Now evict line 0, which is dirty.
        let outcome = c.access_read(line(6));
        match outcome {
            AccessOutcome::Miss { victim: Some(v) } => {
                assert_eq!(v.line, line(0));
                assert!(v.dirty);
            }
            other => panic!("expected dirty eviction, got {other:?}"),
        }
        assert_eq!(c.stats().writebacks.get(), 1);
        assert_eq!(c.stats().evictions.get(), 2);
    }

    #[test]
    fn invalidate_and_downgrade() {
        let mut c = tiny();
        c.access_write(line(1));
        assert_eq!(c.invalidate(line(1)), Some(CoherenceState::Modified));
        assert!(!c.contains(line(1)));
        assert_eq!(c.invalidate(line(1)), None);
        assert_eq!(c.stats().invalidations.get(), 1);

        c.access_write(line(3));
        assert!(c.downgrade(line(3)));
        assert_eq!(c.state_of(line(3)), Some(CoherenceState::Shared));
        assert!(!c.downgrade(line(3)), "already shared");
        assert!(!c.downgrade(line(99)), "not resident");
    }

    #[test]
    fn occupancy_and_resident_iteration() {
        let mut c = Cache::new(CacheConfig::new(4, 2, 64)).unwrap();
        assert_eq!(c.occupancy(), 0.0);
        for n in 0..4u64 {
            c.access_read(line(n));
        }
        assert!((c.occupancy() - 0.5).abs() < 1e-12);
        let resident: Vec<_> = c.resident_lines().collect();
        assert_eq!(resident.len(), 4);
        assert!(resident.iter().all(|&(_, s)| s == CoherenceState::Shared));
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut c = Cache::new(CacheConfig::new(4, 2, 64)).unwrap();
        for n in 0..100u64 {
            c.access_read(line(n));
            assert!(c.len() <= c.config().frames());
        }
        assert_eq!(c.len(), c.config().frames());
    }

    #[test]
    fn stats_reset_keeps_contents() {
        let mut c = tiny();
        c.access_read(line(1));
        c.reset_stats();
        assert_eq!(c.stats().accesses.get(), 0);
        assert!(c.contains(line(1)));
    }
}
