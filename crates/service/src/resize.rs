//! Online live-resize policies for the directory service.
//!
//! A [`ResizePolicy`] is a spec-string-driven schedule for growing (or
//! re-waying) a shard's directory **while the service is running**, parsed
//! and validated exactly like the workspace's other spec strings
//! (`DirectorySpec`, [`FaultPlan`](crate::fault::FaultPlan)).  Firing is
//! scheduled against each shard's *applied-request count*, never against
//! time or worker topology, so an armed policy fires at the same points in
//! each shard's stream on every run, at every worker count, and during
//! journal replay after a crash:
//!
//! ```text
//! resize-grow2@75-every256-max4
//! └─┬──┘ └──┬───┘ └──┬───┘ └┬──┘
//!   │       │        │      └ at most 4 resizes per shard
//!   │       │        └ occupancy checked every 256 requests the
//!   │       │          shard applies (a shard-local epoch)
//!   │       └ grow the set count 2x when occupancy reaches 75 %
//!   └ required prefix
//! ```
//!
//! Clause reference:
//!
//! | clause        | meaning                                                 |
//! |---------------|---------------------------------------------------------|
//! | `grow<F>@<P>` | multiply the per-way set count by `F` (a power of two) when occupancy reaches `P` % |
//! | `reway<W>@<P>`| change the way count to `W` (sets unchanged) when occupancy reaches `P` % |
//! | `every<N>`    | epoch length: check occupancy every `N` applied requests per shard (default 256) |
//! | `max<M>`      | fire at most `M` times per shard (default 1)            |
//!
//! Exactly one mode clause (`grow@` or `reway@`) is required.  The policy
//! is consulted at shard-local epoch boundaries only — after a shard
//! applies its `every`-th, `2·every`-th, … request — which is what makes
//! the firing points a pure function of the per-shard request subsequence.
//! Organizations that cannot resize in place
//! ([`Directory::geometry`](ccd_directory::Directory::geometry) returns
//! `None`, or [`Directory::live_resize`](ccd_directory::Directory::live_resize)
//! returns `Ok(false)`) make an armed policy a silent no-op.

use ccd_common::ConfigError;

/// Default epoch length: occupancy is checked every this many applied
/// requests per shard.
pub const DEFAULT_RESIZE_EVERY: u64 = 256;

/// Default cap on resize firings per shard.
pub const DEFAULT_RESIZE_MAX: u32 = 1;

/// How a firing policy changes a shard's geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResizeMode {
    /// Multiply the per-way set count by this (power-of-two) factor.
    Grow(u32),
    /// Change the way count to this value, keeping the set count.
    Reway(usize),
}

/// A parsed, validated live-resize schedule.  See the module docs for the
/// grammar.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResizePolicy {
    label: String,
    mode: ResizeMode,
    pct: u32,
    every: u64,
    max: u32,
}

impl ResizePolicy {
    /// Parses a `resize-…` spec string.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Parse`] naming the offending clause; rejected inputs
    /// include a missing or duplicated mode clause, a grow factor that is
    /// not a power of two (the per-way set count must stay one), a way
    /// count outside `2..=16`, an occupancy threshold outside `1..=100`,
    /// and zero `every` or `max` values.
    pub fn parse(spec: &str) -> Result<Self, ConfigError> {
        let mut parts = spec.split('-');
        if parts.next() != Some("resize") {
            return Err(ConfigError::parse(format!(
                "resize policy `{spec}` must start with `resize`"
            )));
        }
        let mut mode_pct: Option<(ResizeMode, u32)> = None;
        let mut every = DEFAULT_RESIZE_EVERY;
        let mut max = DEFAULT_RESIZE_MAX;
        for clause in parts {
            if let Some(rest) = clause.strip_prefix("grow") {
                let (factor, pct) =
                    value_at_pct(rest).ok_or_else(|| bad(spec, clause, "grow<factor>@<pct>"))?;
                if factor < 2 || !ccd_common::is_power_of_two(factor) {
                    return Err(ConfigError::parse(format!(
                        "resize policy `{spec}`: grow factor {factor} must be a \
                         power of two >= 2 (the per-way set count must stay a \
                         power of two)"
                    )));
                }
                set_mode(spec, &mut mode_pct, ResizeMode::Grow(factor as u32), pct)?;
            } else if let Some(rest) = clause.strip_prefix("reway") {
                let (ways, pct) =
                    value_at_pct(rest).ok_or_else(|| bad(spec, clause, "reway<ways>@<pct>"))?;
                if !(2..=16).contains(&ways) {
                    return Err(ConfigError::parse(format!(
                        "resize policy `{spec}`: way count {ways} is outside 2..=16"
                    )));
                }
                set_mode(spec, &mut mode_pct, ResizeMode::Reway(ways as usize), pct)?;
            } else if let Some(rest) = clause.strip_prefix("every") {
                every = rest.parse().map_err(|_| bad(spec, clause, "every<n>"))?;
                if every == 0 {
                    return Err(ConfigError::parse(format!(
                        "resize policy `{spec}`: epoch length must be >= 1"
                    )));
                }
            } else if let Some(rest) = clause.strip_prefix("max") {
                max = rest.parse().map_err(|_| bad(spec, clause, "max<n>"))?;
                if max == 0 {
                    return Err(ConfigError::parse(format!(
                        "resize policy `{spec}`: firing cap must be >= 1"
                    )));
                }
            } else {
                return Err(ConfigError::parse(format!(
                    "resize policy `{spec}`: unknown clause `{clause}`"
                )));
            }
        }
        let Some((mode, pct)) = mode_pct else {
            return Err(ConfigError::parse(format!(
                "resize policy `{spec}` needs a mode clause (`grow<f>@<pct>` \
                 or `reway<w>@<pct>`)"
            )));
        };
        let label = render_label(mode, pct, every, max);
        Ok(ResizePolicy {
            label,
            mode,
            pct,
            every,
            max,
        })
    }

    /// The canonical spec string (clauses in a fixed order), parseable back
    /// into an equal policy.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The geometry change a firing applies.
    #[must_use]
    pub fn mode(&self) -> ResizeMode {
        self.mode
    }

    /// The occupancy threshold, in percent.
    #[must_use]
    pub fn pct(&self) -> u32 {
        self.pct
    }

    /// The shard-local epoch length, in applied requests.
    #[must_use]
    pub fn every(&self) -> u64 {
        self.every
    }

    /// The per-shard firing cap.
    #[must_use]
    pub fn max(&self) -> u32 {
        self.max
    }

    /// Whether the policy fires at this epoch boundary: the shard has
    /// fired fewer than `max` times and its occupancy `len / capacity` has
    /// reached the threshold.  Pure integer arithmetic — no float crosses
    /// the determinism contract.
    #[must_use]
    pub fn should_fire(&self, len: usize, capacity: usize, fired: u32) -> bool {
        fired < self.max && (len as u64) * 100 >= (capacity as u64) * u64::from(self.pct)
    }

    /// The geometry a firing moves a `ways × sets` shard to.
    #[must_use]
    pub fn next_geometry(&self, ways: usize, sets: usize) -> (usize, usize) {
        match self.mode {
            ResizeMode::Grow(factor) => (ways, sets * factor as usize),
            ResizeMode::Reway(new_ways) => (new_ways, sets),
        }
    }
}

impl std::str::FromStr for ResizePolicy {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ResizePolicy::parse(s)
    }
}

fn bad(spec: &str, clause: &str, expected: &str) -> ConfigError {
    ConfigError::parse(format!(
        "resize policy `{spec}`: clause `{clause}` does not match `{expected}`"
    ))
}

/// Records the mode clause, rejecting a second one.
fn set_mode(
    spec: &str,
    slot: &mut Option<(ResizeMode, u32)>,
    mode: ResizeMode,
    pct: u64,
) -> Result<(), ConfigError> {
    if slot.is_some() {
        return Err(ConfigError::parse(format!(
            "resize policy `{spec}`: more than one mode clause"
        )));
    }
    if !(1..=100).contains(&pct) {
        return Err(ConfigError::parse(format!(
            "resize policy `{spec}`: occupancy threshold {pct}% is outside 1..=100"
        )));
    }
    *slot = Some((mode, pct as u32));
    Ok(())
}

/// Parses `<digits>@<digits>` into `(value, pct)`.
fn value_at_pct(text: &str) -> Option<(u64, u64)> {
    let (value, pct) = text.split_once('@')?;
    Some((value.parse().ok()?, pct.parse().ok()?))
}

fn render_label(mode: ResizeMode, pct: u32, every: u64, max: u32) -> String {
    let mode = match mode {
        ResizeMode::Grow(factor) => format!("grow{factor}@{pct}"),
        ResizeMode::Reway(ways) => format!("reway{ways}@{pct}"),
    };
    format!("resize-{mode}-every{every}-max{max}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar_and_renders_a_canonical_label() {
        let policy = ResizePolicy::parse("resize-grow2@75-every256-max4").unwrap();
        assert_eq!(policy.mode(), ResizeMode::Grow(2));
        assert_eq!(policy.pct(), 75);
        assert_eq!(policy.every(), 256);
        assert_eq!(policy.max(), 4);
        assert_eq!(policy.label(), "resize-grow2@75-every256-max4");
        // The label round-trips to an equal policy, clause order regardless.
        let shuffled = ResizePolicy::parse("resize-max4-every256-grow2@75").unwrap();
        assert_eq!(shuffled, policy);
        assert_eq!(ResizePolicy::parse(policy.label()).unwrap(), policy);
    }

    #[test]
    fn optional_clauses_default_and_reway_parses() {
        let policy = ResizePolicy::parse("resize-grow4@50").unwrap();
        assert_eq!(policy.every(), DEFAULT_RESIZE_EVERY);
        assert_eq!(policy.max(), DEFAULT_RESIZE_MAX);
        assert_eq!(policy.label(), "resize-grow4@50-every256-max1");

        let policy = ResizePolicy::parse("resize-reway8@60-every128").unwrap();
        assert_eq!(policy.mode(), ResizeMode::Reway(8));
        assert_eq!(policy.label(), "resize-reway8@60-every128-max1");
    }

    #[test]
    fn rejects_malformed_and_inconsistent_specs() {
        for spec in [
            "resiz-grow2@75",            // wrong prefix
            "resize",                    // no mode clause
            "resize-every256",           // no mode clause
            "resize-grow2",              // missing threshold
            "resize-grow@75",            // missing factor
            "resize-grow3@75",           // factor not a power of two
            "resize-grow1@75",           // factor < 2
            "resize-grow0@75",           // factor < 2
            "resize-reway1@75",          // ways < 2
            "resize-reway17@75",         // ways > 16
            "resize-grow2@0",            // threshold out of range
            "resize-grow2@101",          // threshold out of range
            "resize-grow2@75-every0",    // zero epoch
            "resize-grow2@75-max0",      // zero cap
            "resize-grow2@75-reway4@50", // two mode clauses
            "resize-grow2@75-grow2@50",  // two mode clauses
            "resize-shrink2@75",         // unknown clause
            "resize-everyx",             // unparsable value
        ] {
            let err = ResizePolicy::parse(spec).unwrap_err();
            assert!(
                err.to_string().contains("resize policy"),
                "`{spec}` should fail with a resize-policy message, got: {err}"
            );
        }
    }

    #[test]
    fn should_fire_applies_the_threshold_and_the_cap() {
        let policy = ResizePolicy::parse("resize-grow2@75-max2").unwrap();
        // 75% of 400 is 300: the threshold is inclusive.
        assert!(!policy.should_fire(299, 400, 0));
        assert!(policy.should_fire(300, 400, 0));
        assert!(policy.should_fire(400, 400, 1));
        assert!(!policy.should_fire(400, 400, 2), "cap reached");
        // A 100% threshold needs a completely full shard.
        let full = ResizePolicy::parse("resize-grow2@100").unwrap();
        assert!(!full.should_fire(399, 400, 0));
        assert!(full.should_fire(400, 400, 0));
    }

    #[test]
    fn next_geometry_grows_sets_or_swaps_ways() {
        let grow = ResizePolicy::parse("resize-grow2@75").unwrap();
        assert_eq!(grow.next_geometry(4, 512), (4, 1024));
        let reway = ResizePolicy::parse("resize-reway8@75").unwrap();
        assert_eq!(reway.next_geometry(4, 512), (8, 512));
    }
}
