//! Worker supervision: crash detection, deterministic journal replay, and
//! resilient batch delivery for [`DirectoryService::run`].
//!
//! # Supervision state machine
//!
//! ```text
//!            spawn                    batch delivered
//!   ┌──────────────────► RUNNING ◄───────────────────┐
//!   │                       │                        │
//!   │              panic (caught by the              │
//!   │               worker's catch_unwind;           │
//!   │               its Receiver drops, so           │
//!   │               the router's next send           │
//!   │               fails Disconnected)              │
//!   │                       ▼                        │
//!   │                    CRASHED                     │
//!   │                       │ injected + recoverable │
//!   │                       │ + journaled?           │
//!   │            yes        ▼         no             │
//!   │        ┌─────────► classify ──────────┐        │
//!   │        ▼                              ▼        │
//!   │   REBUILD shards              FAILED: shut down
//!   │   REPLAY journal              every lane, join,
//!   │     │    (armed: later        surface
//!   │     │     crash points        ServiceError::
//!   │     │     may re-fire —       WorkerCrashed
//!   │     │     rebuild again)
//!   │     ▼
//!   └─ RESPAWN with the replayed state, re-offer the
//!      undelivered batch, resume ─────────────────────┘
//! ```
//!
//! # Why recovery preserves the digest
//!
//! The router journals every batch it *successfully delivers* to a worker
//! with scheduled crash points (copied before the send; rolled back if the
//! send fails).  A worker's unwind destroys its shards and all its
//! accounting, so recovery starts from nothing: fresh shards built from
//! the same registry and per-shard spec, then the journal — the worker's
//! exact request subsequence, in FIFO order — replayed through the *same*
//! batch-application code the live worker runs.  Replay is therefore not
//! approximately equivalent to the lost work; it is the same fold over the
//! same sequence, so the recovered worker's outcome records, statistics
//! and shard contents are bit-identical to a run in which the crash never
//! happened.  The undelivered batch that surfaced the disconnect was
//! rolled back out of the journal and is re-offered to the replacement, so
//! nothing is lost or applied twice.
//!
//! Replay runs with the remaining crash points still armed: a second crash
//! point whose trigger lies inside the journaled range fires *during
//! replay* (the supervisor just rebuilds and replays again), which is what
//! makes the total number of recoveries — and with it
//! [`ServiceStats::recoveries`](crate::ServiceStats::recoveries) —
//! independent of detection timing.  Scheduled stalls are skipped during
//! replay; they are pure latency and replay owes nobody latency.
//!
//! # Delivery resilience
//!
//! Sends use [`Sender::send_timeout`] under a deterministic bounded
//! exponential [`Backoff`] of virtual ticks (no wall-clock reads): a full
//! queue is retried with geometrically longer bounded waits, and every
//! expiry re-checks for a disconnect, so a stalled worker is probed gently
//! while a crashed one is still detected promptly.  When a fault plan
//! sheds, the seeded admission gate may reject (and count) an offer before
//! it is retried — shedding perturbs scheduling and the
//! [`ServiceStats::shed`](crate::ServiceStats::shed) counter, never
//! results.  When a run fails, the supervisor closes every lane with
//! [`Sender::shutdown`] so healthy workers abandon their backlogs instead
//! of draining work nobody will read.
//!
//! [`DirectoryService::run`]: crate::DirectoryService::run

use crate::error::ServiceError;
use crate::fault::{silence_injected_panics, FaultPlan, InjectedCrash, ShedGate, WorkerFaults};
use crate::request::Request;
use crate::resize::ResizePolicy;
use crate::service::{
    absorb_into, finish, maybe_resize, DirectoryService, ServiceReport, WorkerOutput,
};
use ccd_common::channel::{bounded, Backoff, Receiver, SendTimeoutError, Sender};
use ccd_directory::{
    BuilderRegistry, Directory, DirectoryOp, DirectorySpec, Outcome, APPLY_BATCH_WINDOW,
};
use ccd_obs::{EventKind, FlightRecorder, ObsConfig};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::{Scope, ScopedJoinHandle};

/// What the supervisor hands back once the fleet drains: the worker
/// outputs, the shed and recovery counts, and the router-side flight
/// recording (when one was armed).
type JoinedFleet = (
    Vec<WorkerOutput>,
    u64,
    u64,
    Option<ccd_obs::FlightRecording>,
);

/// First tick budget of the delivery backoff schedule.
pub(crate) const SEND_BACKOFF_START: u32 = 1;

/// Tick-budget cap of the delivery backoff schedule (1024 ticks ≈ 100ms of
/// bounded waiting per round at [`ccd_common::channel::TICK`]).
pub(crate) const SEND_BACKOFF_MAX: u32 = 1024;

/// Everything about a run that never changes while it executes.
struct RunEnv {
    registry: BuilderRegistry,
    slice_spec: DirectorySpec,
    plan: Option<FaultPlan>,
    /// Per worker: does the plan schedule crash points for it?  Only those
    /// workers pay for journaling; for everyone else the fault layer costs
    /// one `Option` check per batch.
    journaled: Vec<bool>,
    workers: usize,
    shards: usize,
    batch: usize,
    queue_depth: usize,
    record: bool,
    /// An armed live-resize schedule.  Applied identically by live workers
    /// and journal replay, so recovery re-fires the same resizes at the
    /// same epoch boundaries.
    resize: Option<ResizePolicy>,
    /// The effective observability config.  Rebuilt slices and replay
    /// outputs re-arm from it, so a recovered worker observes exactly what
    /// the dead one did.
    obs: Option<ObsConfig>,
}

impl RunEnv {
    /// Number of shards worker `w` owns (`w, w + W, w + 2W, …`).
    fn owned_shards(&self, worker: usize) -> usize {
        (self.shards - worker).div_ceil(self.workers)
    }

    /// Builds fresh, empty slices for worker `w`'s shards, re-armed for
    /// observation like the originals.
    fn rebuild_slices(&self, worker: usize) -> Result<Vec<Box<dyn Directory>>, ServiceError> {
        let mut slices = (0..self.owned_shards(worker))
            .map(|_| self.registry.build(&self.slice_spec))
            .collect::<Result<Vec<_>, _>>()
            .map_err(ServiceError::from)?;
        if let Some(obs) = self.obs.as_ref() {
            for slice in &mut slices {
                slice.arm_depth_metrics(obs.sig_bits());
            }
        }
        Ok(slices)
    }
}

/// What a dead worker left behind: who, why, and whether the panic was a
/// scheduled injection.
struct CrashNote {
    worker: usize,
    cause: String,
    injected: Option<InjectedCrash>,
}

impl CrashNote {
    fn new(worker: usize, payload: Box<dyn Any + Send>) -> Self {
        let injected = payload.downcast_ref::<InjectedCrash>().copied();
        let cause = match injected {
            Some(crash) => crash.to_string(),
            None => payload
                .downcast_ref::<&'static str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_string()),
        };
        CrashNote {
            worker,
            cause,
            injected,
        }
    }

    fn into_error(self) -> ServiceError {
        ServiceError::WorkerCrashed {
            worker: self.worker,
            cause: self.cause,
        }
    }
}

/// The supervisor's mutable view of the worker fleet.
struct Supervisor<'scope> {
    txs: Vec<Sender<Vec<Request>>>,
    recycles: Vec<Receiver<Vec<Request>>>,
    handles: Vec<Option<ScopedJoinHandle<'scope, Result<WorkerOutput, CrashNote>>>>,
    /// Per worker: every request successfully delivered so far, in FIFO
    /// order (empty for non-journaled workers).
    journals: Vec<Vec<Request>>,
    /// Per worker: how many of its crash points have fired.
    fired: Vec<usize>,
    gate: Option<ShedGate>,
    shed: u64,
    recoveries: u64,
    /// The router-side flight recorder: delivery, shedding, crash and
    /// recovery events, stamped with request sequence numbers.
    recorder: Option<FlightRecorder>,
}

impl<'scope> Supervisor<'scope> {
    /// Spawns the initial fleet.
    fn launch<'env>(
        scope: &'scope Scope<'scope, 'env>,
        env: &RunEnv,
        owned: Vec<Vec<Box<dyn Directory>>>,
    ) -> Self {
        let mut sup = Supervisor {
            txs: Vec::with_capacity(env.workers),
            recycles: Vec::with_capacity(env.workers),
            handles: Vec::with_capacity(env.workers),
            journals: (0..env.workers).map(|_| Vec::new()).collect(),
            fired: vec![0; env.workers],
            gate: env.plan.as_ref().and_then(FaultPlan::shed_gate),
            shed: 0,
            recoveries: 0,
            recorder: env
                .obs
                .as_ref()
                .filter(|cfg| cfg.records_events())
                .map(|cfg| FlightRecorder::new(cfg.ring(), cfg.spans())),
        };
        for (index, slices) in owned.into_iter().enumerate() {
            let hooks = env.plan.as_ref().and_then(|p| p.arm(index, 0));
            let mut output = WorkerOutput::new(index, slices);
            output.arm_obs(env.obs.as_ref());
            let (tx, recycle_rx, handle) = spawn_worker(scope, env, output, hooks);
            sup.txs.push(tx);
            sup.recycles.push(recycle_rx);
            sup.handles.push(Some(handle));
        }
        sup
    }

    /// Delivers one admitted batch to `owner`, riding out stalls (bounded
    /// backoff), shedding (counted, re-offered) and crashes (recover, then
    /// re-offer).  On success the batch — journaled if the owner is — is
    /// in the owner's queue.
    fn deliver<'env>(
        &mut self,
        scope: &'scope Scope<'scope, 'env>,
        env: &RunEnv,
        owner: usize,
        batch: Vec<Request>,
    ) -> Result<(), ServiceError> {
        // Virtual time of every router-side event for this batch: its
        // first request's sequence number.
        let vtime = batch.first().map_or(0, |request| request.seq);
        let len = batch.len() as u64;
        // Admission control: draw the gate once per shed rejection plus
        // the final admission.  The decision stream is consumed only here,
        // on the single router thread, in offer order — deterministic.
        if let Some(gate) = self.gate.as_mut() {
            while gate.should_shed() {
                self.shed += 1;
                if let Some(recorder) = self.recorder.as_mut() {
                    recorder.record(EventKind::Shed, owner as u16, vtime, len);
                }
            }
        }
        if env.journaled[owner] {
            self.journals[owner].extend_from_slice(&batch);
        }
        let mut pending = batch;
        let mut backoff = Backoff::new(SEND_BACKOFF_START, SEND_BACKOFF_MAX);
        loop {
            match self.txs[owner].send_timeout(pending, backoff.next_ticks()) {
                Ok(()) => {
                    self.record_event(EventKind::BatchRouted, owner, vtime, len);
                    return Ok(());
                }
                Err(SendTimeoutError::TimedOut(batch)) => {
                    // Queue full; the worker is alive but slow (or
                    // stalled).  Wait a deterministically longer bounded
                    // interval and re-offer.
                    pending = batch;
                }
                Err(SendTimeoutError::Disconnected(batch)) => {
                    // This batch was never delivered: roll it back out of
                    // the journal so recovery does not replay it…
                    if env.journaled[owner] {
                        let keep = self.journals[owner].len().saturating_sub(batch.len());
                        self.journals[owner].truncate(keep);
                    }
                    self.recover(scope, env, owner)?;
                    // …then re-journal and re-offer it to the replacement
                    // on a fresh backoff schedule.  No new gate draw: the
                    // batch was already admitted.
                    if env.journaled[owner] {
                        self.journals[owner].extend_from_slice(&batch);
                    }
                    pending = batch;
                    backoff = Backoff::new(SEND_BACKOFF_START, SEND_BACKOFF_MAX);
                }
            }
        }
    }

    /// Records one router-side event (no-op when no recorder is armed).
    fn record_event(&mut self, kind: EventKind, lane: usize, vtime: u64, arg: u64) {
        if let Some(recorder) = self.recorder.as_mut() {
            recorder.record(kind, lane as u16, vtime, arg);
        }
    }

    /// Handles a detected crash of `owner`: joins the corpse, classifies
    /// the panic, and — when it was a scheduled recoverable injection on a
    /// journaled worker — rebuilds the worker's shards by replay and
    /// respawns it.  Anything else is fatal for the run.
    fn recover<'env>(
        &mut self,
        scope: &'scope Scope<'scope, 'env>,
        env: &RunEnv,
        owner: usize,
    ) -> Result<(), ServiceError> {
        let note = self.join_corpse(owner);
        let crash = match note.injected {
            Some(crash) if crash.recoverable && env.journaled[owner] => crash,
            _ => return Err(note.into_error()),
        };
        self.fired[owner] += 1;
        self.recoveries += 1;
        self.record_event(EventKind::Crash, owner, crash.seq, self.fired[owner] as u64);
        let output = self.replay(env, owner)?;
        self.record_event(
            EventKind::Recovery,
            owner,
            crash.seq,
            self.fired[owner] as u64,
        );
        let hooks = env
            .plan
            .as_ref()
            .and_then(|p| p.arm(owner, self.fired[owner]));
        let (tx, recycle_rx, handle) = spawn_worker(scope, env, output, hooks);
        self.txs[owner] = tx;
        self.recycles[owner] = recycle_rx;
        self.handles[owner] = Some(handle);
        Ok(())
    }

    /// Rebuilds `owner`'s state by replaying its journal onto fresh
    /// shards, looping while armed crash points keep firing mid-replay.
    /// Terminates: every iteration either completes, fails, or advances
    /// `fired` (bounded by the plan's crash-point count).
    fn replay(&mut self, env: &RunEnv, owner: usize) -> Result<WorkerOutput, ServiceError> {
        let replayed = self.journals[owner].len() as u64;
        let vtime = self.journals[owner].last().map_or(0, |request| request.seq);
        loop {
            let slices = env.rebuild_slices(owner)?;
            let hooks = env
                .plan
                .as_ref()
                .and_then(|p| p.arm(owner, self.fired[owner]));
            match replay_journal(owner, slices, &self.journals[owner], env, hooks) {
                Ok(output) => {
                    self.record_event(EventKind::JournalReplay, owner, vtime, replayed);
                    return Ok(output);
                }
                Err(note) => match note.injected {
                    Some(crash) if crash.recoverable => {
                        self.fired[owner] += 1;
                        self.recoveries += 1;
                        self.record_event(
                            EventKind::Crash,
                            owner,
                            crash.seq,
                            self.fired[owner] as u64,
                        );
                    }
                    _ => return Err(note.into_error()),
                },
            }
        }
    }

    /// Joins a worker whose channel disconnected and distills its crash
    /// note.
    fn join_corpse(&mut self, owner: usize) -> CrashNote {
        let Some(handle) = self.handles[owner].take() else {
            return CrashNote {
                worker: owner,
                cause: "supervisor lost the worker's join handle".to_string(),
                injected: None,
            };
        };
        match handle.join() {
            Ok(Err(note)) => note,
            Ok(Ok(_)) => CrashNote {
                // A clean exit with the ingestion side still open cannot
                // happen unless the worker's receiver was torn down some
                // other way; treat it as an unrecoverable crash.
                worker: owner,
                cause: "worker exited while its queue was still open".to_string(),
                injected: None,
            },
            // A panic that escaped the worker's own catch_unwind.
            Err(payload) => CrashNote::new(owner, payload),
        }
    }

    /// Closes every lane by explicit shutdown: healthy workers abandon
    /// their backlogs and exit promptly instead of draining results the
    /// failed run will never report.
    fn abort(&self) {
        for tx in &self.txs {
            tx.shutdown();
        }
    }

    /// Ends ingestion (drops every sender) and joins the fleet,
    /// recovering workers that crashed after their last delivery: with the
    /// stream over, their full journals *are* their final state, so replay
    /// alone finishes the job — no respawn.
    fn join_all(mut self, env: &RunEnv) -> Result<JoinedFleet, ServiceError> {
        self.txs.clear();
        let mut outputs = Vec::with_capacity(env.workers);
        for owner in 0..env.workers {
            let Some(handle) = self.handles[owner].take() else {
                continue;
            };
            let note = match handle.join() {
                Ok(Ok(output)) => {
                    outputs.push(output);
                    continue;
                }
                Ok(Err(note)) => note,
                Err(payload) => CrashNote::new(owner, payload),
            };
            let crash = match note.injected {
                Some(crash) if crash.recoverable && env.journaled[owner] => crash,
                _ => {
                    self.abort();
                    return Err(note.into_error());
                }
            };
            self.fired[owner] += 1;
            self.recoveries += 1;
            self.record_event(EventKind::Crash, owner, crash.seq, self.fired[owner] as u64);
            match self.replay(env, owner) {
                Ok(output) => {
                    self.record_event(
                        EventKind::Recovery,
                        owner,
                        crash.seq,
                        self.fired[owner] as u64,
                    );
                    outputs.push(output);
                }
                Err(err) => {
                    self.abort();
                    return Err(err);
                }
            }
        }
        let recording = self.recorder.as_ref().map(FlightRecorder::finish);
        Ok((outputs, self.shed, self.recoveries, recording))
    }
}

/// Runs the concurrent service under supervision.  See the module docs.
pub(crate) fn run_concurrent(
    mut service: DirectoryService,
    ops: impl Iterator<Item = DirectoryOp>,
) -> Result<ServiceReport, ServiceError> {
    let workers = service.config.workers;
    let shards = service.config.shards;
    let batch = service.config.batch;
    let record = service.config.record_outcomes;
    let plan = service.config.fault_plan.clone().filter(|p| !p.is_noop());
    if plan.as_ref().is_some_and(|p| !p.crashes().is_empty()) {
        silence_injected_panics();
    }
    let journaled = (0..workers)
        .map(|w| {
            plan.as_ref()
                .is_some_and(|p| p.crashes().iter().any(|c| c.worker == w))
        })
        .collect();
    let env = RunEnv {
        registry: service.registry.clone(),
        slice_spec: service.slice_spec.clone(),
        plan,
        journaled,
        workers,
        shards,
        batch,
        queue_depth: service.config.queue_depth,
        record,
        resize: service.config.resize_policy.clone(),
        obs: service.obs.clone(),
    };
    let organization = std::mem::take(&mut service.organization);

    // Distribute shard ownership: worker `w` owns global shards
    // `w, w + W, w + 2W, …` — local index `i` is global `w + i·W`.
    let mut owned: Vec<Vec<Box<dyn Directory>>> = (0..workers).map(|_| Vec::new()).collect();
    for (global, slice) in service.slices.drain(..).enumerate() {
        owned[global % workers].push(slice);
    }

    let (outputs, shed, recoveries, router_recording) = std::thread::scope(|scope| {
        let mut sup = Supervisor::launch(scope, &env, owned);

        // The router: stamp, route, batch, deliver (with backpressure
        // towards the generator and supervision towards the workers).
        let mut staging: Vec<Vec<Request>> =
            (0..workers).map(|_| Vec::with_capacity(batch)).collect();
        let routed = (|| -> Result<(), ServiceError> {
            for (seq, op) in ops.enumerate() {
                let (shard, local) = DirectoryService::route(shards as u64, op.line());
                let owner = shard % workers;
                staging[owner].push(Request {
                    seq: seq as u64,
                    shard: (shard / workers) as u32,
                    op: op.with_line(local),
                });
                if staging[owner].len() == batch {
                    let fresh = sup.recycles[owner]
                        .try_recv()
                        .unwrap_or_else(|| Vec::with_capacity(batch));
                    let full = std::mem::replace(&mut staging[owner], fresh);
                    sup.deliver(scope, &env, owner, full)?;
                }
            }
            for (owner, slot) in staging.drain(..).enumerate() {
                if !slot.is_empty() {
                    sup.deliver(scope, &env, owner, slot)?;
                }
            }
            Ok(())
        })();
        if let Err(err) = routed {
            sup.abort();
            return Err(err);
        }
        sup.join_all(&env)
    })?;

    Ok(finish(
        organization,
        shards,
        workers,
        outputs,
        record,
        shed,
        recoveries,
        env.obs.as_ref(),
        router_recording,
    ))
}

/// Spawns one supervised worker.  The worker's entire body — including its
/// [`Receiver`] — lives inside a `catch_unwind`, so an unwinding panic
/// drops the receiver (failing the router's next send: that is the crash
/// *detection* path) and surfaces as an orderly `Err(CrashNote)` through
/// `join` (the crash *classification* path), never as a process abort.
type WorkerLanes<'scope> = (
    Sender<Vec<Request>>,
    Receiver<Vec<Request>>,
    ScopedJoinHandle<'scope, Result<WorkerOutput, CrashNote>>,
);

fn spawn_worker<'scope, 'env>(
    scope: &'scope Scope<'scope, 'env>,
    env: &RunEnv,
    output: WorkerOutput,
    hooks: Option<WorkerFaults>,
) -> WorkerLanes<'scope> {
    let (tx, rx) = bounded::<Vec<Request>>(env.queue_depth);
    // One spare slot beyond the queue depth so a worker's non-blocking
    // buffer return almost never drops a buffer.
    let (recycle_tx, recycle_rx) = bounded::<Vec<Request>>(env.queue_depth + 1);
    let workers = env.workers;
    let record = env.record;
    let resize = env.resize.clone();
    let handle =
        scope.spawn(move || drive_worker(output, workers, rx, recycle_tx, record, hooks, resize));
    (tx, recycle_rx, handle)
}

/// One worker's supervised drain loop: receive a batch, fire any scheduled
/// fault, apply the batch through the batched fast path, account the
/// outcomes, return the buffer, repeat until the ingestion side hangs up
/// or shuts down.
fn drive_worker(
    output: WorkerOutput,
    workers: usize,
    rx: Receiver<Vec<Request>>,
    recycle_tx: Sender<Vec<Request>>,
    record: bool,
    hooks: Option<WorkerFaults>,
    resize: Option<ResizePolicy>,
) -> Result<WorkerOutput, CrashNote> {
    let worker = output.index;
    catch_unwind(AssertUnwindSafe(move || {
        let mut output = output;
        let mut out = Outcome::new();
        let mut ops_buf: Vec<DirectoryOp> = Vec::new();
        let resize = resize.as_ref();
        // Both a natural end of stream (Disconnected) and a supervisor
        // abort (Shutdown) end the loop; the distinction matters to the
        // supervisor, not to the worker.
        while let Ok(mut requests) = rx.recv() {
            output.batches += 1;
            output.batch_span_begin(&requests);
            if let Some(hooks) = hooks.as_ref() {
                hooks.stall();
                if let Some((cut, point)) = hooks.crash_cut(requests.iter().map(|r| r.seq)) {
                    // Apply the prefix normally, then die exactly where
                    // the plan says — before the first request with
                    // `seq >= the trigger`.
                    apply_requests(
                        &mut output,
                        &requests[..cut],
                        workers,
                        record,
                        resize,
                        &mut out,
                        &mut ops_buf,
                    );
                    InjectedCrash {
                        worker: output.index,
                        seq: requests[cut].seq,
                        recoverable: point.recoverable,
                    }
                    .fire();
                }
            }
            apply_requests(
                &mut output,
                &requests,
                workers,
                record,
                resize,
                &mut out,
                &mut ops_buf,
            );
            output.batch_applied(&requests);
            requests.clear();
            // Non-blocking buffer return; on a full recycle ring the
            // buffer is simply dropped and the router allocates fresh.
            let _ = recycle_tx.try_send(requests);
        }
        output
    }))
    .map_err(|payload| CrashNote::new(worker, payload))
}

/// Replays a journal onto fresh slices, producing the `WorkerOutput` the
/// dead worker would have accumulated had it applied exactly these
/// requests.  Remaining crash points stay armed (see the module docs);
/// stalls do not.
fn replay_journal(
    worker: usize,
    slices: Vec<Box<dyn Directory>>,
    journal: &[Request],
    env: &RunEnv,
    hooks: Option<WorkerFaults>,
) -> Result<WorkerOutput, CrashNote> {
    let workers = env.workers;
    let record = env.record;
    let batch = env.batch.max(1);
    let resize = env.resize.as_ref();
    let obs = env.obs.as_ref();
    catch_unwind(AssertUnwindSafe(move || {
        let mut output = WorkerOutput::new(worker, slices);
        output.arm_obs(obs);
        let mut out = Outcome::new();
        let mut ops_buf: Vec<DirectoryOp> = Vec::new();
        for chunk in journal.chunks(batch) {
            output.batches += 1;
            output.batch_span_begin(chunk);
            if let Some(hooks) = hooks.as_ref() {
                if let Some((cut, point)) = hooks.crash_cut(chunk.iter().map(|r| r.seq)) {
                    apply_requests(
                        &mut output,
                        &chunk[..cut],
                        workers,
                        record,
                        resize,
                        &mut out,
                        &mut ops_buf,
                    );
                    InjectedCrash {
                        worker,
                        seq: chunk[cut].seq,
                        recoverable: point.recoverable,
                    }
                    .fire();
                }
            }
            apply_requests(
                &mut output,
                chunk,
                workers,
                record,
                resize,
                &mut out,
                &mut ops_buf,
            );
            output.batch_applied(chunk);
        }
        output
    }))
    .map_err(|payload| CrashNote::new(worker, payload))
}

/// The shared batch-application kernel: exactly this code runs in live
/// workers and in recovery replay, which is half of the digest-identity
/// argument (the other half is the journal being the worker's exact
/// delivered subsequence).
fn apply_requests(
    output: &mut WorkerOutput,
    requests: &[Request],
    workers: usize,
    record: bool,
    resize: Option<&ResizePolicy>,
    out: &mut Outcome,
    ops_buf: &mut Vec<DirectoryOp>,
) {
    output.applied += requests.len() as u64;
    if let Some(policy) = resize {
        // With a resize policy armed, a shard may change geometry between
        // any two requests, so every batch goes through the per-request
        // windowed path (semantically identical to `apply_batch` by the
        // directories' own batching contract) with the epoch check after
        // each absorb — the same apply → absorb → count order as the
        // serial reference.
        let index = output.index as u32;
        let mut start = 0;
        while start < requests.len() {
            let end = (start + APPLY_BATCH_WINDOW).min(requests.len());
            for request in &requests[start..end] {
                output.slices[request.shard as usize].prefetch_line(request.op.line());
            }
            for request in &requests[start..end] {
                let shard = request.shard as usize;
                output.slices[shard].apply(request.op, out);
                let global_shard = request.shard * workers as u32 + index;
                absorb_into(
                    &mut output.outcomes,
                    &mut output.invalidations,
                    &mut output.forced_invalidations,
                    request.seq,
                    global_shard,
                    out,
                    record,
                );
                maybe_resize(output, shard, global_shard, policy);
            }
            start = end;
        }
        return;
    }
    if output.slices.len() == 1 {
        // Single owned shard: the whole batch targets it, so the
        // organization's own (possibly overridden) batched fast path
        // applies directly.
        ops_buf.clear();
        ops_buf.extend(requests.iter().map(|r| r.op));
        let global_shard = output.index as u32;
        let mut at = 0usize;
        let (slices, outcomes) = (&mut output.slices, &mut output.outcomes);
        let (invalidations, forced) = (&mut output.invalidations, &mut output.forced_invalidations);
        let mut absorb = |_op: &DirectoryOp, out: &Outcome| {
            let seq = requests[at].seq;
            at += 1;
            // The closure borrows the accounting fields disjointly from
            // the mutably borrowed slice.
            absorb_into(
                outcomes,
                invalidations,
                forced,
                seq,
                global_shard,
                out,
                record,
            );
        };
        slices[0].apply_batch(ops_buf, out, &mut absorb);
    } else {
        // Multiple shards: same window discipline as the default
        // `apply_batch`, with each request prefetching and applying on its
        // own shard.
        let index = output.index as u32;
        let mut start = 0;
        while start < requests.len() {
            let end = (start + APPLY_BATCH_WINDOW).min(requests.len());
            for request in &requests[start..end] {
                output.slices[request.shard as usize].prefetch_line(request.op.line());
            }
            for request in &requests[start..end] {
                output.slices[request.shard as usize].apply(request.op, out);
                let global_shard = request.shard * workers as u32 + index;
                absorb_into(
                    &mut output.outcomes,
                    &mut output.invalidations,
                    &mut output.forced_invalidations,
                    request.seq,
                    global_shard,
                    out,
                    record,
                );
            }
            start = end;
        }
    }
}
