//! The service's error surface.

use ccd_common::ConfigError;
use std::fmt;

/// Everything a [`DirectoryService`](crate::DirectoryService) run can fail
/// with.
///
/// Before the supervision layer existed, a worker panic propagated through
/// a bare `join().expect(...)` and aborted the whole process; now it is a
/// value callers can match on: [`ServiceError::WorkerCrashed`] names the
/// worker and carries the stringified panic payload.  The supervisor only
/// surfaces it when recovery is impossible — a genuine (non-injected)
/// panic, or a fault plan's `abort@` clause.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ServiceError {
    /// The topology, spec string, load or fault plan was rejected.
    Config(ConfigError),
    /// A worker thread panicked and the supervisor could not (or was
    /// scheduled not to) recover it.
    WorkerCrashed {
        /// Index of the worker that died.
        worker: usize,
        /// The panic payload, stringified (an [`InjectedCrash`] renders
        /// its `Display` form).
        ///
        /// [`InjectedCrash`]: crate::fault::InjectedCrash
        cause: String,
    },
}

impl From<ConfigError> for ServiceError {
    fn from(err: ConfigError) -> Self {
        ServiceError::Config(err)
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Config(err) => write!(f, "{err}"),
            ServiceError::WorkerCrashed { worker, cause } => {
                write!(f, "service worker {worker} crashed: {cause}")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Config(err) => Some(err),
            ServiceError::WorkerCrashed { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_converts() {
        let err: ServiceError = ConfigError::Zero { what: "shards" }.into();
        assert_eq!(err.to_string(), "shards must be non-zero");
        assert!(std::error::Error::source(&err).is_some());

        let err = ServiceError::WorkerCrashed {
            worker: 3,
            cause: "injected crash on worker 3 at seq 9 (unrecoverable)".into(),
        };
        assert!(err.to_string().contains("worker 3 crashed"));
        assert!(std::error::Error::source(&err).is_none());
    }
}
