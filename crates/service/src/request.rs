//! The service's wire types: sequence-numbered requests and the compact
//! outcome log used to verify bit-identity against serial application.

use ccd_common::stats::Fnv64;
use ccd_directory::{DirectoryOp, Outcome};

/// One coherence request in flight inside the service.
///
/// The ingestion frontend stamps every operation with a global sequence
/// number (its position in the input stream) and pre-routes it: `shard` is
/// the *worker-local* shard index and the operation's line has already been
/// translated to the owning shard's local address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// Position of this operation in the global input stream.
    pub seq: u64,
    /// Worker-local index of the owning shard.
    pub shard: u32,
    /// The operation, with its line in shard-local coordinates.
    pub op: DirectoryOp,
}

/// Everything one applied request observably did, in 48 bytes.
///
/// A record captures the full observable content of the [`Outcome`] buffer:
/// the scalar flags and counts verbatim, and the variable-length parts
/// (semantic invalidation targets, forced-eviction victims and their
/// targets) folded into [`OutcomeRecord::detail`] with FNV-1a.  Two outcome
/// streams are therefore equal **iff** every operation produced the same
/// hits, allocations, attempt counts, invalidation sets and eviction sets —
/// which is exactly the service's bit-identity contract against serial
/// application.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutcomeRecord {
    /// Sequence number of the request that produced this outcome.
    pub seq: u64,
    /// Global index of the shard that applied it.
    pub shard: u32,
    /// Insertion attempts performed (0 when nothing was allocated).
    pub attempts: u32,
    /// Semantic invalidation targets (other sharers on an exclusive
    /// request, holders on an entry removal).
    pub invalidations: u32,
    /// Directory entries displaced to make room.
    pub forced_evictions: u32,
    /// Cached blocks invalidated by those displacements.
    pub forced_invalidations: u32,
    /// [`Outcome::hit`].
    pub hit: bool,
    /// [`Outcome::allocated_new_entry`].
    pub allocated: bool,
    /// [`Outcome::insertion_failed`].
    pub failed: bool,
    /// [`Outcome::invalidated_all`].
    pub invalidated_all: bool,
    /// [`Outcome::removed_entry`].
    pub removed_entry: bool,
    /// FNV-1a fold of the variable-length outcome content: the semantic
    /// invalidation targets in order, then each forced eviction's (global)
    /// victim line and its invalidation targets.
    pub detail: u64,
}

impl OutcomeRecord {
    /// Captures the outcome buffer of one applied request.  `shard` is the
    /// global shard index; eviction victim lines inside `out` are expected
    /// to be in that shard's local address space and are folded as such
    /// (both sides of the bit-identity comparison capture the same way).
    #[must_use]
    pub fn capture(seq: u64, shard: u32, out: &Outcome) -> Self {
        let mut detail = Fnv64::new();
        for cache in out.invalidate() {
            detail.fold(u64::from(cache.raw()));
        }
        for eviction in out.forced_evictions() {
            detail.fold(eviction.line.block_number());
            for cache in eviction.targets {
                detail.fold(u64::from(cache.raw()));
            }
        }
        OutcomeRecord {
            seq,
            shard,
            attempts: out.insertion_attempts(),
            invalidations: out.invalidate().len() as u32,
            forced_evictions: out.forced_eviction_count() as u32,
            forced_invalidations: out.forced_invalidation_count() as u32,
            hit: out.hit(),
            allocated: out.allocated_new_entry(),
            failed: out.insertion_failed(),
            invalidated_all: out.invalidated_all(),
            removed_entry: out.removed_entry(),
            detail: detail.finish(),
        }
    }

    /// Folds this record into a running FNV-1a digest (see
    /// [`digest_outcomes`]).
    pub fn fold(&self, digest: &mut Fnv64) {
        digest
            .fold(self.seq)
            .fold(u64::from(self.shard))
            .fold(u64::from(self.attempts))
            .fold(u64::from(self.invalidations))
            .fold(u64::from(self.forced_evictions))
            .fold(u64::from(self.forced_invalidations));
        let flags = u64::from(self.hit)
            | u64::from(self.allocated) << 1
            | u64::from(self.failed) << 2
            | u64::from(self.invalidated_all) << 3
            | u64::from(self.removed_entry) << 4;
        digest.fold(flags).fold(self.detail);
    }

    /// Folds the record's *semantic* view — everything except
    /// [`OutcomeRecord::attempts`] — into a running digest (see
    /// [`digest_outcome_semantics`]).
    ///
    /// Attempt counts describe how hard the directory worked, not what it
    /// decided: a statically large table and a table that grew to the same
    /// geometry mid-stream hold the same entries and produce the same hits,
    /// invalidations and evictions, but reach them through different
    /// displacement chains.  This view is what live-resize equivalence is
    /// checked against.
    pub fn fold_semantic(&self, digest: &mut Fnv64) {
        digest
            .fold(self.seq)
            .fold(u64::from(self.shard))
            .fold(u64::from(self.invalidations))
            .fold(u64::from(self.forced_evictions))
            .fold(u64::from(self.forced_invalidations));
        let flags = u64::from(self.hit)
            | u64::from(self.allocated) << 1
            | u64::from(self.failed) << 2
            | u64::from(self.invalidated_all) << 3
            | u64::from(self.removed_entry) << 4;
        digest.fold(flags).fold(self.detail);
    }
}

/// FNV-1a digest of an outcome log in sequence order.
///
/// Two configurations of the service (any worker count over the same shard
/// count) produce the same digest iff their merged outcome logs are
/// identical record-for-record; `BENCH_service.json` records the digest so
/// the golden check pins it.
#[must_use]
pub fn digest_outcomes(records: &[OutcomeRecord]) -> u64 {
    let mut digest = Fnv64::new();
    for record in records {
        record.fold(&mut digest);
    }
    digest.finish()
}

/// FNV-1a digest of an outcome log's semantic view in sequence order:
/// [`digest_outcomes`] with every record's attempt count masked out (see
/// [`OutcomeRecord::fold_semantic`]).
#[must_use]
pub fn digest_outcome_semantics(records: &[OutcomeRecord]) -> u64 {
    let mut digest = Fnv64::new();
    for record in records {
        record.fold_semantic(&mut digest);
    }
    digest.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccd_common::{CacheId, LineAddr};

    fn sample_outcome() -> Outcome {
        let mut out = Outcome::new();
        out.set_hit(true);
        out.record_allocation(3);
        out.push_invalidate(CacheId::new(2));
        out.push_forced_eviction_one(LineAddr::from_block_number(9), CacheId::new(1));
        out
    }

    #[test]
    fn capture_reflects_the_outcome_buffer() {
        let record = OutcomeRecord::capture(17, 4, &sample_outcome());
        assert_eq!(record.seq, 17);
        assert_eq!(record.shard, 4);
        assert_eq!(record.attempts, 3);
        assert_eq!(record.invalidations, 1);
        assert_eq!(record.forced_evictions, 1);
        assert_eq!(record.forced_invalidations, 1);
        assert!(record.hit && record.allocated);
        assert!(!record.failed && !record.invalidated_all && !record.removed_entry);
    }

    #[test]
    fn detail_hash_distinguishes_variable_content() {
        let base = OutcomeRecord::capture(0, 0, &sample_outcome());
        let mut other = sample_outcome();
        other.push_invalidate(CacheId::new(3));
        let changed = OutcomeRecord::capture(0, 0, &other);
        assert_ne!(base.detail, changed.detail);
    }

    #[test]
    fn semantic_digest_masks_attempts_and_nothing_else() {
        let base = OutcomeRecord::capture(0, 0, &sample_outcome());
        let mut cheaper = base;
        cheaper.attempts = 1;
        assert_ne!(digest_outcomes(&[base]), digest_outcomes(&[cheaper]));
        assert_eq!(
            digest_outcome_semantics(&[base]),
            digest_outcome_semantics(&[cheaper]),
            "attempt counts must not enter the semantic view"
        );
        let mut other = base;
        other.invalidations += 1;
        assert_ne!(
            digest_outcome_semantics(&[base]),
            digest_outcome_semantics(&[other]),
            "every other field still must"
        );
    }

    #[test]
    fn digest_is_order_and_content_sensitive() {
        let a = OutcomeRecord::capture(0, 0, &sample_outcome());
        let b = OutcomeRecord::capture(1, 1, &sample_outcome());
        assert_ne!(digest_outcomes(&[a, b]), digest_outcomes(&[b, a]));
        assert_eq!(digest_outcomes(&[a, b]), digest_outcomes(&[a, b]));
        assert_ne!(digest_outcomes(&[a]), digest_outcomes(&[a, b]));
    }
}
