//! Deterministic fault injection for the directory service.
//!
//! A [`FaultPlan`] is a seeded, spec-string-driven schedule of failures —
//! worker panics, artificial batch-processing stalls, admission-control
//! shedding — parsed and validated exactly like the workspace's other spec
//! strings (`DirectorySpec`, workload specs).  Faults are *scheduled
//! against the request sequence numbering*, never against time, so a plan
//! reproduces the same failure at the same point in the stream on every
//! run, at every worker count, on every machine:
//!
//! ```text
//! faults-seed7-crash@w2:5000-stall@w0:2ms-shed0.01
//! └─┬──┘ └─┬──┘ └────┬─────┘ └────┬─────┘ └──┬───┘
//!   │      │         │            │          └ shed each batch offer with
//!   │      │         │            │            probability 0.01 (seeded)
//!   │      │         │            └ worker 0 sleeps 2ms per batch
//!   │      │         └ worker 2 panics before applying seq 5000
//!   │      └ seed for the shedding gate
//!   └ required prefix
//! ```
//!
//! Clause reference:
//!
//! | clause          | meaning                                                |
//! |-----------------|--------------------------------------------------------|
//! | `seed<N>`       | seed for the [`ShedGate`] RNG (default 0)              |
//! | `crash@w<W>:<S>`| worker `W` panics before applying the first request with `seq >= S`; *recoverable* — the supervisor replays and resumes |
//! | `abort@w<W>:<S>`| like `crash@`, but marked unrecoverable: the supervisor surfaces `ServiceError::WorkerCrashed` instead of recovering |
//! | `stall@w<W>:<N>ms` | worker `W` sleeps `N` ms before each batch (latency only — results are unaffected) |
//! | `shed<P>`       | the router sheds each batch offer with probability `P ∈ [0, 1)`; shed offers are counted and re-offered, so no request is lost |
//!
//! Injection sites are compiled into the worker loop as an
//! `Option<WorkerFaults>` hook — `None` (the unarmed case) costs one branch
//! per batch and nothing else.  Injected panics carry an [`InjectedCrash`]
//! payload so the supervisor can tell a scheduled failure from a genuine
//! bug, and [`silence_injected_panics`] keeps the default panic hook's
//! backtrace spew out of expected-failure test output.

use ccd_common::rng::Rng64;
use ccd_common::{ConfigError, Xoshiro256};
use std::time::Duration;

/// The longest stall a plan may schedule, per batch.  A cap keeps a typo
/// from turning a test suite into an overnight run.
pub const MAX_STALL_MS: u64 = 1_000;

/// One scheduled worker panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashPoint {
    /// The worker that will panic.
    pub worker: usize,
    /// The panic fires immediately before this worker applies its first
    /// request with `seq >= seq`.
    pub seq: u64,
    /// `false` for `abort@` clauses: the supervisor must not recover.
    pub recoverable: bool,
}

/// One scheduled per-batch stall.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StallPoint {
    /// The worker that will stall.
    pub worker: usize,
    /// Sleep applied before each batch the worker drains.
    pub millis: u64,
}

/// A parsed, validated fault schedule.  See the module docs for the
/// grammar.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    label: String,
    seed: u64,
    crashes: Vec<CrashPoint>,
    stalls: Vec<StallPoint>,
    shed: f64,
}

impl FaultPlan {
    /// Parses a `faults-…` spec string.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Parse`] naming the offending clause; rejected inputs
    /// include duplicate `(worker, seq)` crash points, more than one stall
    /// per worker, `shed` outside `[0, 1)` and stalls over
    /// [`MAX_STALL_MS`].
    pub fn parse(spec: &str) -> Result<Self, ConfigError> {
        let mut parts = spec.split('-');
        if parts.next() != Some("faults") {
            return Err(ConfigError::parse(format!(
                "fault plan `{spec}` must start with `faults`"
            )));
        }
        let mut seed = 0u64;
        let mut crashes: Vec<CrashPoint> = Vec::new();
        let mut stalls: Vec<StallPoint> = Vec::new();
        let mut shed = 0.0f64;
        for clause in parts {
            if let Some(rest) = clause.strip_prefix("seed") {
                seed = rest.parse().map_err(|_| bad(spec, clause, "seed"))?;
            } else if let Some(rest) = clause.strip_prefix("crash@") {
                let (worker, seq) = worker_colon_value(rest)
                    .ok_or_else(|| bad(spec, clause, "crash@w<worker>:<seq>"))?;
                crashes.push(CrashPoint {
                    worker,
                    seq,
                    recoverable: true,
                });
            } else if let Some(rest) = clause.strip_prefix("abort@") {
                let (worker, seq) = worker_colon_value(rest)
                    .ok_or_else(|| bad(spec, clause, "abort@w<worker>:<seq>"))?;
                crashes.push(CrashPoint {
                    worker,
                    seq,
                    recoverable: false,
                });
            } else if let Some(rest) = clause.strip_prefix("stall@") {
                let inner = rest
                    .strip_suffix("ms")
                    .ok_or_else(|| bad(spec, clause, "stall@w<worker>:<millis>ms"))?;
                let (worker, millis) = worker_colon_value(inner)
                    .ok_or_else(|| bad(spec, clause, "stall@w<worker>:<millis>ms"))?;
                if millis > MAX_STALL_MS {
                    return Err(ConfigError::parse(format!(
                        "fault plan `{spec}`: stall of {millis}ms exceeds the \
                         {MAX_STALL_MS}ms cap"
                    )));
                }
                stalls.push(StallPoint { worker, millis });
            } else if let Some(rest) = clause.strip_prefix("shed") {
                shed = rest.parse().map_err(|_| bad(spec, clause, "shed<p>"))?;
                if !(0.0..1.0).contains(&shed) {
                    return Err(ConfigError::parse(format!(
                        "fault plan `{spec}`: shed probability {shed} is outside [0, 1)"
                    )));
                }
            } else {
                return Err(ConfigError::parse(format!(
                    "fault plan `{spec}`: unknown clause `{clause}`"
                )));
            }
        }
        // Canonical order: crashes by (worker, seq) — which is also the
        // firing order each worker observes — and stalls by worker.
        crashes.sort_by_key(|c| (c.worker, c.seq));
        if crashes
            .windows(2)
            .any(|w| (w[0].worker, w[0].seq) == (w[1].worker, w[1].seq))
        {
            return Err(ConfigError::parse(format!(
                "fault plan `{spec}`: duplicate crash point (same worker and seq)"
            )));
        }
        stalls.sort_by_key(|s| s.worker);
        if stalls.windows(2).any(|w| w[0].worker == w[1].worker) {
            return Err(ConfigError::parse(format!(
                "fault plan `{spec}`: more than one stall for the same worker"
            )));
        }
        let label = render_label(seed, &crashes, &stalls, shed);
        Ok(FaultPlan {
            label,
            seed,
            crashes,
            stalls,
            shed,
        })
    }

    /// The canonical spec string (clauses in a fixed order), parseable back
    /// into an equal plan.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The shedding-gate seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Scheduled crashes, sorted by `(worker, seq)`.
    #[must_use]
    pub fn crashes(&self) -> &[CrashPoint] {
        &self.crashes
    }

    /// Scheduled stalls, sorted by worker.
    #[must_use]
    pub fn stalls(&self) -> &[StallPoint] {
        &self.stalls
    }

    /// The per-offer shedding probability.
    #[must_use]
    pub fn shed(&self) -> f64 {
        self.shed
    }

    /// `true` when every scheduled crash is recoverable (a plan with no
    /// crashes is trivially recoverable).
    #[must_use]
    pub fn is_recoverable(&self) -> bool {
        self.crashes.iter().all(|c| c.recoverable)
    }

    /// `true` when the plan schedules nothing at all.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.crashes.is_empty() && self.stalls.is_empty() && self.shed == 0.0
    }

    /// Checks that every referenced worker exists under a `workers`-wide
    /// topology.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Inconsistent`] when a clause names worker `>= workers`.
    pub fn validate_for(&self, workers: usize) -> Result<(), ConfigError> {
        let referenced = self
            .crashes
            .iter()
            .map(|c| c.worker)
            .chain(self.stalls.iter().map(|s| s.worker))
            .max();
        match referenced {
            Some(w) if w >= workers => Err(ConfigError::Inconsistent {
                what: "fault plan names a worker index >= the service worker count",
            }),
            _ => Ok(()),
        }
    }

    /// Compiles the per-worker injection hooks: `arm(w, fired)` is what
    /// worker `w`'s loop consults, with the first `fired` of its crash
    /// points disarmed (a replacement worker spawned after recovery `k`
    /// must not re-fire the crashes its predecessors already fired).
    #[must_use]
    pub fn arm(&self, worker: usize, fired: usize) -> Option<WorkerFaults> {
        let crashes: Vec<CrashPoint> = self
            .crashes
            .iter()
            .filter(|c| c.worker == worker)
            .skip(fired)
            .copied()
            .collect();
        let stall = self
            .stalls
            .iter()
            .find(|s| s.worker == worker)
            .map(|s| Duration::from_millis(s.millis));
        if crashes.is_empty() && stall.is_none() {
            return None;
        }
        Some(WorkerFaults { crashes, stall })
    }

    /// The router's admission-control gate, or `None` when the plan sheds
    /// nothing.
    #[must_use]
    pub fn shed_gate(&self) -> Option<ShedGate> {
        (self.shed > 0.0).then(|| ShedGate::new(self.seed, self.shed))
    }
}

impl std::str::FromStr for FaultPlan {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FaultPlan::parse(s)
    }
}

fn bad(spec: &str, clause: &str, expected: &str) -> ConfigError {
    ConfigError::parse(format!(
        "fault plan `{spec}`: clause `{clause}` does not match `{expected}`"
    ))
}

/// Parses `w<digits>:<digits>` into `(worker, value)`.
fn worker_colon_value(text: &str) -> Option<(usize, u64)> {
    let rest = text.strip_prefix('w')?;
    let (worker, value) = rest.split_once(':')?;
    Some((worker.parse().ok()?, value.parse().ok()?))
}

fn render_label(seed: u64, crashes: &[CrashPoint], stalls: &[StallPoint], shed: f64) -> String {
    use std::fmt::Write as _;
    let mut label = format!("faults-seed{seed}");
    for c in crashes {
        let kind = if c.recoverable { "crash" } else { "abort" };
        let _ = write!(label, "-{kind}@w{}:{}", c.worker, c.seq);
    }
    for s in stalls {
        let _ = write!(label, "-stall@w{}:{}ms", s.worker, s.millis);
    }
    if shed > 0.0 {
        let _ = write!(label, "-shed{shed}");
    }
    label
}

/// One worker's compiled injection hooks ([`FaultPlan::arm`]).
#[derive(Clone, Debug)]
pub struct WorkerFaults {
    /// This worker's remaining crash points, in firing (seq) order.
    crashes: Vec<CrashPoint>,
    /// Per-batch sleep, when scheduled.
    stall: Option<Duration>,
}

impl WorkerFaults {
    /// Where this batch must be cut short by a scheduled crash: the index
    /// of the first request with `seq >= the next crash point` (requests
    /// before it apply normally, then the worker panics), together with
    /// that crash point.  `None` when no crash fires inside this batch.
    ///
    /// Worker queues are FIFO and seqs within one worker's stream ascend,
    /// so scanning the batch in order finds the unique cut.
    #[must_use]
    pub fn crash_cut(&self, seqs: impl Iterator<Item = u64>) -> Option<(usize, CrashPoint)> {
        let next = *self.crashes.first()?;
        seqs.enumerate()
            .find(|&(_, seq)| seq >= next.seq)
            .map(|(at, _)| (at, next))
    }

    /// Sleeps this worker's scheduled per-batch stall, if any.  Pure
    /// latency: no clock is read and no result depends on the sleep.
    pub fn stall(&self) {
        if let Some(pause) = self.stall {
            std::thread::sleep(pause);
        }
    }

    /// The scheduled per-batch stall, if any.
    #[must_use]
    pub fn stall_duration(&self) -> Option<Duration> {
        self.stall
    }

    /// The remaining crash points, in firing order.
    #[must_use]
    pub fn crashes(&self) -> &[CrashPoint] {
        &self.crashes
    }
}

/// The payload of an injected worker panic.
///
/// Carrying a concrete type (via `std::panic::panic_any`) lets the
/// supervisor distinguish a scheduled failure from a genuine bug when it
/// downcasts the payload, and lets the quiet panic hook suppress exactly
/// the expected panics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InjectedCrash {
    /// The worker that panicked.
    pub worker: usize,
    /// The sequence number the crash fired at (the first request *not*
    /// applied).
    pub seq: u64,
    /// Mirrors [`CrashPoint::recoverable`].
    pub recoverable: bool,
}

impl InjectedCrash {
    /// Fires this crash: panics with `self` as the payload.
    pub fn fire(self) -> ! {
        std::panic::panic_any(self)
    }
}

impl std::fmt::Display for InjectedCrash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "injected crash on worker {} at seq {} ({})",
            self.worker,
            self.seq,
            if self.recoverable {
                "recoverable"
            } else {
                "unrecoverable"
            }
        )
    }
}

/// Installs (once, process-wide) a panic hook that stays silent for
/// [`InjectedCrash`] payloads and delegates everything else to the
/// previously installed hook.
///
/// Injected panics are *expected*: the supervisor catches and handles
/// them, so the default hook's "thread panicked" + backtrace output would
/// be pure noise — and alarming noise — in every fault-injection test and
/// benchmark.  The wrapper is installed under a [`std::sync::Once`] and
/// never uninstalled, which keeps it safe under concurrently running
/// tests.
pub fn silence_injected_panics() {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedCrash>().is_none() {
                previous(info);
            }
        }));
    });
}

/// The router's seeded admission-control gate: decides, per batch offer,
/// whether to *shed* — count the offer as rejected and retry — instead of
/// delivering immediately.
///
/// The gate models an overloaded frontend turning requests away, but
/// deterministically: the decision stream depends only on the plan seed
/// (one seeded [`Xoshiro256`] consumed by the single router thread in
/// offer order), never on queue timing.  Shed offers are
/// re-offered rather than dropped, so shedding perturbs scheduling and the
/// `shed` counter — not results.
#[derive(Clone, Debug)]
pub struct ShedGate {
    rng: Xoshiro256,
    probability: f64,
}

impl ShedGate {
    /// A gate shedding with `probability` per offer, seeded by `seed`.
    #[must_use]
    pub fn new(seed: u64, probability: f64) -> Self {
        ShedGate {
            rng: Xoshiro256::new(seed),
            probability,
        }
    }

    /// Draws the next decision: `true` to shed this offer.
    pub fn should_shed(&mut self) -> bool {
        self.rng.next_f64() < self.probability
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar_and_renders_a_canonical_label() {
        let plan = FaultPlan::parse("faults-seed7-crash@w2:5000-stall@w0:2ms-shed0.01").unwrap();
        assert_eq!(plan.seed(), 7);
        assert_eq!(
            plan.crashes(),
            &[CrashPoint {
                worker: 2,
                seq: 5000,
                recoverable: true
            }]
        );
        assert_eq!(
            plan.stalls(),
            &[StallPoint {
                worker: 0,
                millis: 2
            }]
        );
        assert!((plan.shed() - 0.01).abs() < 1e-12);
        assert!(plan.is_recoverable());
        assert!(!plan.is_noop());
        assert_eq!(
            plan.label(),
            "faults-seed7-crash@w2:5000-stall@w0:2ms-shed0.01"
        );
        // The label round-trips to an equal plan, clause order regardless.
        let shuffled =
            FaultPlan::parse("faults-shed0.01-stall@w0:2ms-crash@w2:5000-seed7").unwrap();
        assert_eq!(shuffled, plan);
        assert_eq!(FaultPlan::parse(plan.label()).unwrap(), plan);
    }

    #[test]
    fn abort_clauses_make_the_plan_unrecoverable() {
        let plan = FaultPlan::parse("faults-abort@w1:100").unwrap();
        assert!(!plan.is_recoverable());
        assert!(!plan.crashes()[0].recoverable);
        let mixed = FaultPlan::parse("faults-crash@w0:5-abort@w0:10").unwrap();
        assert!(!mixed.is_recoverable());
        assert_eq!(mixed.crashes().len(), 2);
    }

    #[test]
    fn rejects_malformed_and_inconsistent_specs() {
        for spec in [
            "fault-crash@w0:1",                 // wrong prefix
            "faults-crash@0:1",                 // missing `w`
            "faults-crash@w0",                  // missing seq
            "faults-stall@w0:2",                // missing `ms`
            "faults-stall@w0:2000ms",           // over the cap
            "faults-shed1.5",                   // probability out of range
            "faults-shed1.0",                   // [0, 1) is half-open
            "faults-seedx",                     // unparsable seed
            "faults-explode@w0:1",              // unknown clause
            "faults-crash@w0:1-crash@w0:1",     // duplicate crash point
            "faults-stall@w0:1ms-stall@w0:2ms", // two stalls, one worker
        ] {
            let err = FaultPlan::parse(spec).unwrap_err();
            assert!(
                err.to_string().contains("fault plan"),
                "`{spec}` should fail with a fault-plan message, got: {err}"
            );
        }
    }

    #[test]
    fn validate_for_checks_worker_bounds() {
        let plan = FaultPlan::parse("faults-crash@w2:100").unwrap();
        assert!(plan.validate_for(3).is_ok());
        assert!(plan.validate_for(2).is_err());
        assert!(FaultPlan::parse("faults").unwrap().validate_for(1).is_ok());
    }

    #[test]
    fn arm_compiles_per_worker_hooks_and_skips_fired_crashes() {
        let plan = FaultPlan::parse("faults-crash@w1:10-crash@w1:30-stall@w0:1ms-shed0.5").unwrap();
        assert!(plan.arm(2, 0).is_none(), "worker 2 has no scheduled faults");
        let w0 = plan.arm(0, 0).unwrap();
        assert!(w0.crashes().is_empty());
        assert_eq!(w0.stall_duration(), Some(Duration::from_millis(1)));
        let w1 = plan.arm(1, 0).unwrap();
        assert_eq!(w1.crashes().len(), 2);
        // After the first crash fired, the replacement arms only the rest.
        let w1_after = plan.arm(1, 1).unwrap();
        assert_eq!(w1_after.crashes(), &w1.crashes()[1..]);
        assert!(plan.arm(1, 2).is_none(), "all crashes fired, no stall");
        assert!(plan.shed_gate().is_some());
        assert!(FaultPlan::parse("faults").unwrap().shed_gate().is_none());
    }

    #[test]
    fn crash_cut_finds_the_first_request_at_or_past_the_trigger() {
        let plan = FaultPlan::parse("faults-crash@w0:100").unwrap();
        let hooks = plan.arm(0, 0).unwrap();
        // The trigger seq itself need not appear in the stream.
        let (at, point) = hooks.crash_cut([40, 90, 150, 200].into_iter()).unwrap();
        assert_eq!(at, 2);
        assert_eq!(point.seq, 100);
        assert!(hooks.crash_cut([1, 2, 3].into_iter()).is_none());
        let (at, _) = hooks.crash_cut([100].into_iter()).unwrap();
        assert_eq!(at, 0, "a crash can cut a batch at its first request");
    }

    #[test]
    fn shed_gate_is_deterministic_per_seed() {
        let draw = |seed: u64| -> Vec<bool> {
            let mut gate = ShedGate::new(seed, 0.5);
            (0..64).map(|_| gate.should_shed()).collect()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
        let sheds = draw(7).iter().filter(|&&s| s).count();
        assert!((10..54).contains(&sheds), "p=0.5 over 64 draws: {sheds}");

        let mut never = ShedGate::new(1, 0.0);
        assert!((0..64).all(|_| !never.should_shed()));
    }

    #[test]
    fn injected_crash_displays_and_fires_as_a_typed_panic() {
        let crash = InjectedCrash {
            worker: 3,
            seq: 42,
            recoverable: true,
        };
        assert!(crash.to_string().contains("worker 3"));
        assert!(crash.to_string().contains("seq 42"));
        silence_injected_panics();
        let caught = std::panic::catch_unwind(|| crash.fire()).unwrap_err();
        let payload = caught.downcast_ref::<InjectedCrash>().unwrap();
        assert_eq!(*payload, crash);
    }
}
