//! `ccd-service` — a concurrent, shard-per-worker directory service.
//!
//! The Cuckoo Directory paper argues its organization scales to many-core
//! systems because lookups and insertions stay cheap under heavy concurrent
//! reference streams.  The rest of this workspace exercises the directories
//! through offline, serial simulations; this crate puts them **online**: a
//! multi-threaded [`DirectoryService`] that
//!
//! * owns address-interleaved directory shards, each owned by exactly one
//!   worker thread — **no locks on the hot path**;
//! * ingests coherence requests through bounded channels
//!   ([`ccd_common::channel`]) with blocking backpressure, so any generator
//!   becomes a closed loop;
//! * drains requests in batches through the directories' batched fast path
//!   ([`Directory::apply_batch`] / [`Directory::prefetch_line`]);
//! * exposes a snapshot-consistent, mergeable [`ServiceStats`] built from
//!   the same `Counter::merge` / `DirectoryStats::merge` machinery as the
//!   simulation engine;
//! * keeps a sequence-numbered [`OutcomeRecord`] log, so **any worker
//!   count over a fixed shard count is verifiably bit-identical** to the
//!   inline serial reference ([`DirectoryService::run_serial`]).
//!
//! Traffic comes from the [`LoadSpec`] frontend: any workload the
//! `ccd-workloads` catalog can name — paper profile, sharing-pattern
//! scenario, or recorded trace replay — deterministically becomes directory
//! traffic per `(workload, cores, seed)`.
//!
//! Workers run **supervised** ([`supervisor`]): a seeded [`FaultPlan`] can
//! deterministically crash, stall, or shed against the service, and the
//! supervisor recovers crashed workers by replaying the sequenced request
//! journal — the post-recovery report is still bit-identical to the
//! fault-free serial reference ([`ServiceReport::recovery_semantics`]).
//! Unrecoverable crashes surface as [`ServiceError::WorkerCrashed`] instead
//! of aborting the process.
//!
//! Shards can also **grow online**: an armed [`ResizePolicy`] checks each
//! shard's occupancy at shard-local epoch boundaries (every N requests the
//! shard applies) and live-resizes the shard's directory in place through
//! [`Directory::live_resize`](ccd_directory::Directory::live_resize).
//! Because the epochs are a pure function of each shard's request
//! subsequence, resizes fire at identical points at every worker count and
//! during journal replay — the full determinism contract holds with a
//! policy armed, and [`ServiceReport::resize_semantics`] additionally
//! relates a grown run to a statically provisioned one.
//!
//! ```
//! use ccd_service::{DirectoryService, LoadSpec, ServiceConfig};
//!
//! let load = LoadSpec::parse("migratory-zipf0.9", 8, 7, 20_000)?;
//! let config = ServiceConfig::new("cuckoo-4x512-c8", 4, 2);
//!
//! // Two workers, four shards...
//! let report = DirectoryService::build_standard(config.clone())?.run_load(&load)?;
//! // ...are bit-identical to inline serial application.
//! let serial = DirectoryService::build_standard(config)?.run_load_serial(&load)?;
//! assert_eq!(report.semantics(), serial.semantics());
//! assert_eq!(report.requests, 20_000);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`Directory::apply_batch`]: ccd_directory::Directory::apply_batch
//! [`Directory::prefetch_line`]: ccd_directory::Directory::prefetch_line

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod error;
pub mod fault;
pub mod load;
pub mod request;
pub mod resize;
pub mod service;
pub mod supervisor;

pub use ccd_obs::ObsConfig;
pub use config::{ServiceConfig, DEFAULT_BATCH, DEFAULT_QUEUE_DEPTH};
pub use error::ServiceError;
pub use fault::{CrashPoint, FaultPlan, StallPoint};
pub use load::{op_for, LoadSpec, OpStream};
pub use request::{digest_outcome_semantics, digest_outcomes, OutcomeRecord, Request};
pub use resize::{ResizeMode, ResizePolicy};
pub use service::{DirectoryService, ObsReport, ServiceReport, ServiceStats};
