//! The closed-loop load-generator frontend.
//!
//! Any workload the `ccd-workloads` catalog can name — a calibrated paper
//! profile, a parameterized sharing-pattern scenario, or a recorded trace
//! replay — becomes service traffic here: the workload's deterministic
//! [`MemRef`] stream is mapped reference-by-reference onto the directory
//! protocol (loads and instruction fetches add a sharer, stores request
//! exclusivity), and the service's bounded ingestion queues turn the
//! generator into a closed loop: it produces exactly as fast as the shard
//! workers drain.

use ccd_common::{BlockGeometry, CacheId, ConfigError, MemRef, DEFAULT_BLOCK_BYTES};
use ccd_directory::DirectoryOp;
use ccd_workloads::WorkloadSpec;

/// A fully-described service load: which workload, for how many cores,
/// which seed, and how many requests.  A pure value — streaming it twice
/// yields the same operations in the same order.
#[derive(Clone, Debug, PartialEq)]
pub struct LoadSpec {
    /// The workload producing the reference stream.
    pub workload: WorkloadSpec,
    /// Number of cores issuing references; core `n` is mapped to tracked
    /// cache `n`, so the directory spec must track at least this many
    /// caches.
    pub cores: usize,
    /// Trace-stream seed (ignored by trace replays).
    pub seed: u64,
    /// Number of requests to generate.
    pub requests: u64,
}

impl LoadSpec {
    /// A load spec from a workload spec string.
    ///
    /// # Errors
    ///
    /// Propagates [`WorkloadSpec`] parse errors (which quote the offending
    /// token).
    pub fn parse(
        workload: &str,
        cores: usize,
        seed: u64,
        requests: u64,
    ) -> Result<Self, ConfigError> {
        Ok(LoadSpec {
            workload: workload.parse()?,
            cores,
            seed,
            requests,
        })
    }

    /// Cheaply validates that [`LoadSpec::ops`] can supply the configured
    /// number of requests (scenario knobs, core pinning, replay headers).
    ///
    /// # Errors
    ///
    /// See [`WorkloadSpec::validate`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.workload.validate(self.cores, self.requests)
    }

    /// Builds the deterministic operation stream.
    ///
    /// # Errors
    ///
    /// See [`WorkloadSpec::stream`].
    pub fn ops(&self) -> Result<OpStream, ConfigError> {
        self.validate()?;
        Ok(OpStream {
            refs: self.workload.stream(self.cores, self.seed)?,
            geometry: BlockGeometry::new(DEFAULT_BLOCK_BYTES),
            remaining: self.requests,
        })
    }
}

/// Maps one memory reference onto the directory protocol: stores become
/// exclusive requests (invalidating other sharers), loads and instruction
/// fetches add a sharer.  `geometry` converts byte addresses to lines.
#[must_use]
pub fn op_for(reference: &MemRef, geometry: &BlockGeometry) -> DirectoryOp {
    let line = geometry.line_of(reference.addr);
    let cache = CacheId::new(reference.core.raw());
    if reference.kind.is_write() {
        DirectoryOp::SetExclusive { line, cache }
    } else {
        DirectoryOp::AddSharer { line, cache }
    }
}

/// The operation stream of one [`LoadSpec`]: a workload reference stream
/// mapped through [`op_for`], truncated to the configured request count.
#[derive(Debug)]
pub struct OpStream {
    refs: Box<dyn ccd_workloads::TraceStream>,
    geometry: BlockGeometry,
    remaining: u64,
}

impl Iterator for OpStream {
    type Item = DirectoryOp;

    fn next(&mut self) -> Option<DirectoryOp> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let reference = self.refs.next()?;
        Some(op_for(&reference, &self.geometry))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.remaining as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccd_common::{Address, CoreId};

    #[test]
    fn maps_reads_and_writes_onto_the_protocol() {
        let geometry = BlockGeometry::new(64);
        let read = MemRef::read(CoreId::new(3), Address::new(0x1040));
        let write = MemRef::write(CoreId::new(5), Address::new(0x1040));
        let ifetch = MemRef::ifetch(CoreId::new(1), Address::new(0x2000));
        let line = geometry.line_of(Address::new(0x1040));
        assert_eq!(
            op_for(&read, &geometry),
            DirectoryOp::AddSharer {
                line,
                cache: CacheId::new(3)
            }
        );
        assert_eq!(
            op_for(&write, &geometry),
            DirectoryOp::SetExclusive {
                line,
                cache: CacheId::new(5)
            }
        );
        assert!(matches!(
            op_for(&ifetch, &geometry),
            DirectoryOp::AddSharer { .. }
        ));
    }

    #[test]
    fn streams_are_deterministic_and_bounded() {
        let load = LoadSpec::parse("readmostly", 8, 42, 500).unwrap();
        let a: Vec<_> = load.ops().unwrap().collect();
        let b: Vec<_> = load.ops().unwrap().collect();
        assert_eq!(a.len(), 500);
        assert_eq!(a, b, "same spec, same ops");

        let reseeded = LoadSpec { seed: 43, ..load };
        let c: Vec<_> = reseeded.ops().unwrap().collect();
        assert_ne!(a, c, "the seed matters");
    }

    #[test]
    fn bad_workloads_fail_validation() {
        let load = LoadSpec::parse("migratory-16c", 4, 0, 100).unwrap();
        assert!(load.validate().is_err(), "core pinning mismatch");
        assert!(load.ops().is_err());
        assert!(LoadSpec::parse("martian", 4, 0, 100).is_err());
    }
}
