//! Service topology configuration.

use crate::fault::FaultPlan;
use crate::resize::ResizePolicy;
use ccd_common::ConfigError;
use ccd_directory::DirectorySpec;
use ccd_obs::ObsConfig;

/// Default number of request batches a worker queue can hold before the
/// ingestion frontend blocks.
pub const DEFAULT_QUEUE_DEPTH: usize = 8;

/// Default number of requests per ingestion batch.
pub const DEFAULT_BATCH: usize = 256;

/// The shape of a [`DirectoryService`](crate::DirectoryService).
///
/// * `spec` names the organization of every shard (a `ccd-directory` spec
///   string such as `"cuckoo-4x4096-c16"`); the spec's set count is divided
///   across the shards so the **total capacity is independent of the shard
///   count**, exactly like `shardedN:` specs.
/// * `shards` fixes the address interleaving (`block mod shards`) and with
///   it the service's *semantics*: outcome streams and statistics depend on
///   the shard count only.
/// * `workers` fixes the *parallelism*: shard `s` is owned by worker
///   `s mod workers`, every shard is owned by exactly one worker, and no
///   lock ever guards a shard — which is why any worker count produces
///   bit-identical results.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceConfig {
    /// Directory spec string built for every shard (set count divided by
    /// the shard count).
    pub spec: String,
    /// Number of address-interleaved shards (the unit of ownership).
    pub shards: usize,
    /// Number of worker threads (at most one per shard).
    pub workers: usize,
    /// Batches each worker queue holds before ingestion blocks.
    pub queue_depth: usize,
    /// Requests per ingestion batch.
    pub batch: usize,
    /// Record one [`OutcomeRecord`](crate::OutcomeRecord) per request.
    /// Verification and the golden digests need the log; a pure throughput
    /// measurement can turn it off.
    pub record_outcomes: bool,
    /// An armed fault-injection schedule, or `None` (the default) for a
    /// fault-free run.  See [`FaultPlan`].
    pub fault_plan: Option<FaultPlan>,
    /// An armed live-resize schedule, or `None` (the default) for
    /// statically provisioned shards.  See [`ResizePolicy`].
    pub resize_policy: Option<ResizePolicy>,
    /// An armed observability layer, or `None` (the default) to run dark.
    /// `None` here still honors a `CCD_OBS` environment override at build
    /// time; an explicit config wins over the environment.  Arming is
    /// observational only — contract #11 says armed and unarmed runs are
    /// digest-identical.  See [`ObsConfig`].
    pub obs: Option<ObsConfig>,
}

impl ServiceConfig {
    /// A config with the given topology and default queue/batch sizes,
    /// outcome recording on.
    #[must_use]
    pub fn new(spec: impl Into<String>, shards: usize, workers: usize) -> Self {
        ServiceConfig {
            spec: spec.into(),
            shards,
            workers,
            queue_depth: DEFAULT_QUEUE_DEPTH,
            batch: DEFAULT_BATCH,
            record_outcomes: true,
            fault_plan: None,
            resize_policy: None,
            obs: None,
        }
    }

    /// Returns the config with a different queue depth.
    #[must_use]
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth;
        self
    }

    /// Returns the config with a different batch size.
    #[must_use]
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Returns the config with outcome recording switched on or off.
    #[must_use]
    pub fn with_outcomes(mut self, record_outcomes: bool) -> Self {
        self.record_outcomes = record_outcomes;
        self
    }

    /// Returns the config with a fault-injection plan armed.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Returns the config with a fault plan parsed from a `faults-…` spec
    /// string (see [`FaultPlan::parse`]).
    ///
    /// # Errors
    ///
    /// The plan's parse error.
    pub fn with_fault_spec(self, spec: &str) -> Result<Self, ConfigError> {
        Ok(self.with_faults(FaultPlan::parse(spec)?))
    }

    /// Returns the config with a live-resize policy armed.
    #[must_use]
    pub fn with_resize(mut self, policy: ResizePolicy) -> Self {
        self.resize_policy = Some(policy);
        self
    }

    /// Returns the config with a resize policy parsed from a `resize-…`
    /// spec string (see [`ResizePolicy::parse`]).
    ///
    /// # Errors
    ///
    /// The policy's parse error.
    pub fn with_resize_spec(self, spec: &str) -> Result<Self, ConfigError> {
        Ok(self.with_resize(ResizePolicy::parse(spec)?))
    }

    /// Returns the config with the observability layer armed.
    #[must_use]
    pub fn with_obs(mut self, obs: ObsConfig) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Returns the config with an observability layer parsed from an
    /// `obs-…` spec string (see [`ObsConfig::parse`]).
    ///
    /// # Errors
    ///
    /// The spec's parse error.
    pub fn with_obs_spec(self, spec: &str) -> Result<Self, ConfigError> {
        Ok(self.with_obs(ObsConfig::parse(spec)?))
    }

    /// Validates the topology and parses the shard spec.
    ///
    /// # Errors
    ///
    /// * [`ConfigError::Zero`] — zero shards, workers, queue depth or batch;
    /// * [`ConfigError::Inconsistent`] — more workers than shards, a
    ///   `shardedN:` spec prefix (the service does its own interleaving),
    ///   a set count not divisible by the shard count, or a fault plan
    ///   naming a worker the topology does not have;
    /// * any parse error from [`DirectorySpec`].
    pub fn validate(&self) -> Result<DirectorySpec, ConfigError> {
        if self.shards == 0 {
            return Err(ConfigError::Zero {
                what: "service shard count",
            });
        }
        if self.workers == 0 {
            return Err(ConfigError::Zero {
                what: "service worker count",
            });
        }
        if self.queue_depth == 0 {
            return Err(ConfigError::Zero {
                what: "service queue depth",
            });
        }
        if self.batch == 0 {
            return Err(ConfigError::Zero {
                what: "service batch size",
            });
        }
        if self.workers > self.shards {
            return Err(ConfigError::Inconsistent {
                what: "service worker count must not exceed the shard count \
                       (each worker owns at least one shard)",
            });
        }
        if let Some(plan) = &self.fault_plan {
            plan.validate_for(self.workers)?;
        }
        let spec: DirectorySpec = self.spec.parse()?;
        if spec.shards != 1 {
            return Err(ConfigError::Inconsistent {
                what: "service shard interleaving is configured by ServiceConfig::shards; \
                       the spec string must not carry a `shardedN:` prefix",
            });
        }
        if !spec.sets.is_multiple_of(self.shards) {
            return Err(ConfigError::Inconsistent {
                what: "service shard count must divide the spec's set count \
                       so total capacity is preserved",
            });
        }
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_sound_topology() {
        let config = ServiceConfig::new("sparse-4x256-c8", 4, 2)
            .with_queue_depth(2)
            .with_batch(32)
            .with_outcomes(false);
        let spec = config.validate().unwrap();
        assert_eq!(spec.org, "sparse");
        assert_eq!(config.queue_depth, 2);
        assert_eq!(config.batch, 32);
        assert!(!config.record_outcomes);
    }

    #[test]
    fn rejects_degenerate_topologies() {
        let base = |shards, workers| ServiceConfig::new("sparse-4x256-c8", shards, workers);
        assert!(base(0, 1).validate().is_err());
        assert!(base(4, 0).validate().is_err());
        assert!(base(2, 4).validate().is_err(), "more workers than shards");
        assert!(base(4, 4).with_queue_depth(0).validate().is_err());
        assert!(base(4, 4).with_batch(0).validate().is_err());
        // 3 shards do not divide 256 sets.
        assert!(base(3, 1).validate().is_err());
    }

    #[test]
    fn fault_plans_are_validated_against_the_worker_count() {
        let config = ServiceConfig::new("sparse-4x256-c8", 4, 2)
            .with_fault_spec("faults-crash@w1:100")
            .unwrap();
        assert!(config.validate().is_ok());
        let config = config.with_fault_spec("faults-crash@w2:100").unwrap();
        let err = config.validate().unwrap_err();
        assert!(err.to_string().contains("worker index"), "{err}");
        assert!(ServiceConfig::new("sparse-4x256-c8", 4, 2)
            .with_fault_spec("faults-oops")
            .is_err());
    }

    #[test]
    fn resize_policies_parse_through_the_builder() {
        let config = ServiceConfig::new("cuckoo-4x256-c8", 4, 2)
            .with_resize_spec("resize-grow2@75-every128")
            .unwrap();
        assert_eq!(
            config.resize_policy.as_ref().unwrap().label(),
            "resize-grow2@75-every128-max1"
        );
        assert!(config.validate().is_ok());
        assert!(ServiceConfig::new("cuckoo-4x256-c8", 4, 2)
            .with_resize_spec("resize-oops")
            .is_err());
    }

    #[test]
    fn rejects_pre_sharded_specs_and_bad_spec_strings() {
        let err = ServiceConfig::new("sharded2:sparse-4x256", 4, 2)
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("shardedN:"), "{err}");
        // Spec parse errors pass through with their token-level message.
        let err = ServiceConfig::new("sparse-4xq", 4, 2)
            .validate()
            .unwrap_err();
        assert!(err.to_string().contains("`4xq`"), "{err}");
    }
}
