//! The concurrent shard-per-worker directory service.
//!
//! # Topology
//!
//! ```text
//!             ┌────────────── DirectoryService::run ──────────────┐
//!             │                                                   │
//! ops ──► router (caller thread)                                  │
//!             │  seq-stamp, route by block % shards,              │
//!             │  batch per owning worker                          │
//!             ├─── bounded channel ──► worker 0 ── shards 0,W,2W… │
//!             ├─── bounded channel ──► worker 1 ── shards 1,W+1,… │
//!             └─── bounded channel ──► worker W-1 ─ shards …      │
//! ```
//!
//! Every shard is owned by exactly one worker, so the hot path takes no
//! lock: a worker's only synchronization is the bounded ingestion channel
//! it drains batches from (and the allocation-recycling return channel it
//! offers drained batch buffers back on).  Batches are applied through the
//! directories' own batched fast path — [`Directory::apply_batch`] when a
//! worker owns a single shard, and the same window-prefetch discipline
//! ([`Directory::prefetch_line`] per [`APPLY_BATCH_WINDOW`]) across shards
//! otherwise.
//!
//! # Determinism contract
//!
//! The shard count fixes the service's *semantics*; the worker count is
//! *pure parallelism*:
//!
//! 1. the router stamps requests with their global sequence number and
//!    routes in input order,
//! 2. each worker's channel is FIFO, so each shard observes exactly the
//!    per-address (in fact per-shard) subsequence of the input stream, in
//!    input order, regardless of how many workers exist,
//! 3. statistics merge in global shard order and outcome logs merge by
//!    sequence number.
//!
//! Consequently, for a fixed shard count, **every worker count produces
//! bit-identical outcome logs, statistics and shard contents** — equal to
//! [`DirectoryService::run_serial`], the inline reference that applies the
//! same per-shard streams on the calling thread with no channels at all.
//! `crates/service/tests/service_determinism.rs` enforces this across
//! scenario families, trace replays and (workers × shards) grids.

use crate::config::ServiceConfig;
use crate::load::LoadSpec;
use crate::request::{digest_outcomes, OutcomeRecord, Request};
use ccd_common::channel::{bounded, Receiver, Sender};
use ccd_common::stats::Counter;
use ccd_common::{ConfigError, LineAddr};
use ccd_directory::{
    BuilderRegistry, Directory, DirectoryOp, DirectorySpec, DirectoryStats, Outcome,
    APPLY_BATCH_WINDOW,
};
use std::fmt;

/// Snapshot-consistent service statistics, built from the same mergeable
/// machinery the simulation engine uses ([`Counter::merge`],
/// [`DirectoryStats::merge`]).
///
/// A snapshot is taken after the ingestion stream is fully drained and all
/// workers have quiesced, so it is consistent by construction: every
/// counter reflects exactly the same prefix of the request stream (all of
/// it).  Per-shard directory statistics merge in global shard order — a
/// fixed order — so even the floating-point accumulators inside
/// [`DirectoryStats`] are bit-identical across worker counts.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServiceStats {
    /// Requests applied (equals the requests ingested once drained).
    pub requests: Counter,
    /// Semantic invalidation targets across all requests.
    pub invalidations: Counter,
    /// Cached-block invalidations forced by directory-capacity conflicts.
    pub forced_invalidations: Counter,
    /// Directory statistics merged across all shards, in shard order.
    pub directory: DirectoryStats,
}

impl ServiceStats {
    /// An empty snapshot.
    #[must_use]
    pub fn new() -> Self {
        ServiceStats::default()
    }

    /// Merges another snapshot into this one.  Integer counters merge
    /// order-independently; merge [`ServiceStats::directory`] snapshots in
    /// a fixed order when bit-exact float reproducibility matters.
    pub fn merge(&mut self, other: &ServiceStats) {
        self.requests.merge(&other.requests);
        self.invalidations.merge(&other.invalidations);
        self.forced_invalidations.merge(&other.forced_invalidations);
        self.directory.merge(&other.directory);
    }
}

/// The result of running a service to completion over one request stream.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceReport {
    /// Label of the shard organization, e.g. `service8x[Cuckoo 1x (4-way)]`.
    /// Deliberately independent of the worker count.
    pub organization: String,
    /// Number of address-interleaved shards.
    pub shards: usize,
    /// Worker threads used (`1` for [`DirectoryService::run_serial`]).
    pub workers: usize,
    /// Requests applied.
    pub requests: u64,
    /// Ingestion batches drained.  A scheduling detail, not semantics: the
    /// batch count depends on how requests split across workers, so it is
    /// excluded from [`ServiceReport::semantics`].
    pub batches: u64,
    /// Directory entries resident across all shards after the drain.
    pub entries: usize,
    /// The merged statistics snapshot.
    pub stats: ServiceStats,
    /// The sequence-ordered outcome log (empty when
    /// [`ServiceConfig::record_outcomes`] is off).
    pub outcomes: Vec<OutcomeRecord>,
    /// FNV-1a digest of the outcome log ([`digest_outcomes`]).
    pub outcome_digest: u64,
}

impl ServiceReport {
    /// The worker-count-independent part of the report — everything the
    /// determinism contract says must be bit-identical for a fixed shard
    /// count.  Two reports with equal `semantics()` applied the same
    /// per-shard streams to the same effect.
    #[must_use]
    #[allow(clippy::type_complexity)]
    pub fn semantics(
        &self,
    ) -> (
        &str,
        usize,
        u64,
        usize,
        &ServiceStats,
        &[OutcomeRecord],
        u64,
    ) {
        (
            &self.organization,
            self.shards,
            self.requests,
            self.entries,
            &self.stats,
            &self.outcomes,
            self.outcome_digest,
        )
    }
}

/// A built directory service: `shards` independent directory slices plus
/// the topology that will drive them.  Consume it with
/// [`DirectoryService::run`] (concurrent) or
/// [`DirectoryService::run_serial`] (the inline reference).
pub struct DirectoryService {
    config: ServiceConfig,
    slices: Vec<Box<dyn Directory>>,
    organization: String,
}

impl fmt::Debug for DirectoryService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DirectoryService")
            .field("organization", &self.organization)
            .field("shards", &self.config.shards)
            .field("workers", &self.config.workers)
            .finish_non_exhaustive()
    }
}

impl DirectoryService {
    /// Builds the service's shards from `config` using `registry`.
    ///
    /// The spec's set count is divided across the shards, so the total
    /// capacity is the same for every shard count (exactly like the
    /// `shardedN:` spec prefix).
    ///
    /// # Errors
    ///
    /// See [`ServiceConfig::validate`] and [`BuilderRegistry::build`].
    pub fn build(config: ServiceConfig, registry: &BuilderRegistry) -> Result<Self, ConfigError> {
        let spec = config.validate()?;
        let slice_spec = DirectorySpec {
            sets: spec.sets / config.shards,
            ..spec
        };
        let slices = (0..config.shards)
            .map(|_| registry.build(&slice_spec))
            .collect::<Result<Vec<_>, _>>()?;
        let organization = format!("service{}x[{}]", config.shards, slices[0].organization());
        Ok(DirectoryService {
            config,
            slices,
            organization,
        })
    }

    /// [`DirectoryService::build`] with the standard six-organization
    /// registry (`ccd_cuckoo::standard_registry`).
    ///
    /// # Errors
    ///
    /// See [`DirectoryService::build`].
    pub fn build_standard(config: ServiceConfig) -> Result<Self, ConfigError> {
        Self::build(config, &ccd_cuckoo::standard_registry())
    }

    /// The service's organization label (independent of the worker count).
    #[must_use]
    pub fn organization(&self) -> &str {
        &self.organization
    }

    /// Number of tracked caches per shard.
    #[must_use]
    pub fn num_caches(&self) -> usize {
        self.slices[0].num_caches()
    }

    /// Total entry capacity across all shards.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slices.iter().map(|s| s.capacity()).sum()
    }

    /// Checks that `load` fits this service (its cores map onto tracked
    /// caches, its workload validates for the configured request count).
    ///
    /// # Errors
    ///
    /// [`ConfigError::Inconsistent`] on a core/cache mismatch, or the
    /// load's own validation error.
    pub fn check_load(&self, load: &LoadSpec) -> Result<(), ConfigError> {
        if load.cores > self.num_caches() {
            return Err(ConfigError::Inconsistent {
                what: "load generates references for more cores than the \
                       directory spec tracks caches (add a `-cN` modifier)",
            });
        }
        load.validate()
    }

    /// Streams `load` through the concurrent service.
    ///
    /// # Errors
    ///
    /// See [`DirectoryService::check_load`].
    pub fn run_load(self, load: &LoadSpec) -> Result<ServiceReport, ConfigError> {
        self.check_load(load)?;
        let ops = load.ops()?;
        Ok(self.run(ops))
    }

    /// Streams `load` through the inline serial reference.
    ///
    /// # Errors
    ///
    /// See [`DirectoryService::check_load`].
    pub fn run_load_serial(self, load: &LoadSpec) -> Result<ServiceReport, ConfigError> {
        self.check_load(load)?;
        let ops = load.ops()?;
        Ok(self.run_serial(ops))
    }

    /// Routes `op`'s line: the owning global shard and the shard-local line.
    #[inline]
    fn route(shards: u64, line: LineAddr) -> (usize, LineAddr) {
        let block = line.block_number();
        (
            (block % shards) as usize,
            LineAddr::from_block_number(block / shards),
        )
    }

    /// Runs the service over `ops`: spawns one worker thread per configured
    /// worker, ingests the stream in batches with backpressure from the
    /// calling thread, drains everything, joins the workers and assembles
    /// the snapshot.  See the module docs for the determinism contract.
    #[must_use]
    pub fn run(mut self, ops: impl Iterator<Item = DirectoryOp>) -> ServiceReport {
        let shards = self.config.shards;
        let workers = self.config.workers;
        let batch = self.config.batch;
        let record = self.config.record_outcomes;

        // Distribute shard ownership: worker `w` owns global shards
        // `w, w + W, w + 2W, …` — local index `i` is global `w + i·W`.
        let mut owned: Vec<Vec<Box<dyn Directory>>> = (0..workers).map(|_| Vec::new()).collect();
        for (global, slice) in self.slices.drain(..).enumerate() {
            owned[global % workers].push(slice);
        }

        let outputs: Vec<WorkerOutput> = std::thread::scope(|scope| {
            let mut txs: Vec<Sender<Vec<Request>>> = Vec::with_capacity(workers);
            let mut recycle: Vec<Receiver<Vec<Request>>> = Vec::with_capacity(workers);
            let mut handles = Vec::with_capacity(workers);
            for (index, slices) in owned.into_iter().enumerate() {
                let (tx, rx) = bounded::<Vec<Request>>(self.config.queue_depth);
                // One spare slot beyond the queue depth so a worker's
                // non-blocking buffer return almost never drops a buffer.
                let (recycle_tx, recycle_rx) = bounded::<Vec<Request>>(self.config.queue_depth + 1);
                txs.push(tx);
                recycle.push(recycle_rx);
                handles.push(
                    scope.spawn(move || {
                        worker_loop(index, workers, slices, &rx, &recycle_tx, record)
                    }),
                );
            }

            // The router: stamp, route, batch, send (blocking on a full
            // queue — the service's backpressure towards the generator).
            let mut staging: Vec<Vec<Request>> =
                (0..workers).map(|_| Vec::with_capacity(batch)).collect();
            for (seq, op) in ops.enumerate() {
                let (shard, local) = Self::route(shards as u64, op.line());
                let owner = shard % workers;
                staging[owner].push(Request {
                    seq: seq as u64,
                    shard: (shard / workers) as u32,
                    op: op.with_line(local),
                });
                if staging[owner].len() == batch {
                    let fresh = recycle[owner]
                        .try_recv()
                        .unwrap_or_else(|| Vec::with_capacity(batch));
                    let full = std::mem::replace(&mut staging[owner], fresh);
                    if txs[owner].send(full).is_err() {
                        // The worker is gone (it panicked); stop feeding and
                        // let the join below surface the panic.
                        break;
                    }
                }
            }
            for (owner, slot) in staging.into_iter().enumerate() {
                if !slot.is_empty() {
                    let _ = txs[owner].send(slot);
                }
            }
            drop(txs);

            handles
                .into_iter()
                .map(|handle| handle.join().expect("service worker panicked"))
                .collect()
        });

        finish(self.organization, shards, workers, outputs, record)
    }

    /// The serial reference: applies the same per-shard streams inline on
    /// the calling thread — no workers, no channels, no batching.  Any
    /// concurrent run over the same shard count must match this
    /// bit-identically (see [`ServiceReport::semantics`]).
    #[must_use]
    pub fn run_serial(mut self, ops: impl Iterator<Item = DirectoryOp>) -> ServiceReport {
        let shards = self.config.shards;
        let record = self.config.record_outcomes;
        let mut output = WorkerOutput::new(0, std::mem::take(&mut self.slices));
        let mut out = Outcome::new();
        for (seq, op) in ops.enumerate() {
            let (shard, local) = Self::route(shards as u64, op.line());
            output.slices[shard].apply(op.with_line(local), &mut out);
            output.applied += 1;
            absorb_into(
                &mut output.outcomes,
                &mut output.invalidations,
                &mut output.forced_invalidations,
                seq as u64,
                shard as u32,
                &out,
                record,
            );
        }
        // One "worker" owning every shard in global order.
        finish(self.organization, shards, 1, vec![output], record)
    }
}

/// What one worker hands back when its queue closes.
struct WorkerOutput {
    /// The worker's index (`global shard = index + local · workers`).
    index: usize,
    /// The owned slices, in local order.
    slices: Vec<Box<dyn Directory>>,
    outcomes: Vec<OutcomeRecord>,
    applied: u64,
    batches: u64,
    invalidations: u64,
    forced_invalidations: u64,
}

impl WorkerOutput {
    fn new(index: usize, slices: Vec<Box<dyn Directory>>) -> Self {
        WorkerOutput {
            index,
            slices,
            outcomes: Vec::new(),
            applied: 0,
            batches: 0,
            invalidations: 0,
            forced_invalidations: 0,
        }
    }
}

/// One worker's drain loop: receive a batch, apply it through the batched
/// fast path, account the outcomes, return the buffer, repeat until the
/// ingestion side hangs up.
fn worker_loop(
    index: usize,
    workers: usize,
    slices: Vec<Box<dyn Directory>>,
    rx: &Receiver<Vec<Request>>,
    recycle_tx: &Sender<Vec<Request>>,
    record: bool,
) -> WorkerOutput {
    let mut output = WorkerOutput::new(index, slices);
    let mut out = Outcome::new();
    let mut ops_buf: Vec<DirectoryOp> = Vec::new();
    while let Some(mut requests) = rx.recv() {
        output.batches += 1;
        output.applied += requests.len() as u64;
        if output.slices.len() == 1 {
            // Single owned shard: the whole batch targets it, so the
            // organization's own (possibly overridden) batched fast path
            // applies directly.
            ops_buf.clear();
            ops_buf.extend(requests.iter().map(|r| r.op));
            let global_shard = index as u32;
            let mut at = 0usize;
            let (slice, acc) = (&mut output.slices, &mut requests);
            let mut absorb = |_op: &DirectoryOp, out: &Outcome| {
                let seq = acc[at].seq;
                at += 1;
                // Inlined WorkerOutput::absorb (the closure cannot borrow
                // `output` while `output.slices` is mutably borrowed).
                absorb_into(
                    &mut output.outcomes,
                    &mut output.invalidations,
                    &mut output.forced_invalidations,
                    seq,
                    global_shard,
                    out,
                    record,
                );
            };
            slice[0].apply_batch(&ops_buf, &mut out, &mut absorb);
        } else {
            // Multiple shards: same window discipline as the default
            // `apply_batch`, with each request prefetching and applying on
            // its own shard.
            let mut start = 0;
            while start < requests.len() {
                let end = (start + APPLY_BATCH_WINDOW).min(requests.len());
                for request in &requests[start..end] {
                    output.slices[request.shard as usize].prefetch_line(request.op.line());
                }
                for request in &requests[start..end] {
                    output.slices[request.shard as usize].apply(request.op, &mut out);
                    let global_shard = request.shard * workers as u32 + index as u32;
                    absorb_into(
                        &mut output.outcomes,
                        &mut output.invalidations,
                        &mut output.forced_invalidations,
                        request.seq,
                        global_shard,
                        &out,
                        record,
                    );
                }
                start = end;
            }
        }
        requests.clear();
        // Non-blocking buffer return; on a full recycle ring the buffer is
        // simply dropped and the router allocates a fresh one.
        let _ = recycle_tx.try_send(requests);
    }
    output
}

/// The outcome-accounting kernel shared by both worker paths and the
/// serial reference (free function so closures can borrow the output
/// fields disjointly from the slices).
#[allow(clippy::too_many_arguments)]
fn absorb_into(
    outcomes: &mut Vec<OutcomeRecord>,
    invalidations: &mut u64,
    forced_invalidations: &mut u64,
    seq: u64,
    global_shard: u32,
    out: &Outcome,
    record: bool,
) {
    *invalidations += out.invalidate().len() as u64;
    *forced_invalidations += out.forced_invalidation_count() as u64;
    if record {
        outcomes.push(OutcomeRecord::capture(seq, global_shard, out));
    }
}

/// Reassembles worker outputs into the final report: shards back into
/// global order, per-shard statistics merged in that (fixed) order,
/// outcome logs merged by sequence number.
fn finish(
    organization: String,
    shards: usize,
    workers: usize,
    mut outputs: Vec<WorkerOutput>,
    record: bool,
) -> ServiceReport {
    outputs.sort_by_key(|output| output.index);
    debug_assert!(outputs
        .iter()
        .enumerate()
        .all(|(index, output)| output.index == index));

    let mut stats = ServiceStats::new();
    let mut requests = 0u64;
    let mut outcomes: Vec<OutcomeRecord> = Vec::new();
    let mut batches = 0u64;
    for output in &outputs {
        requests += output.applied;
        batches += output.batches;
        stats.invalidations.add(output.invalidations);
        stats.forced_invalidations.add(output.forced_invalidations);
    }
    stats.requests.add(requests);
    // Per-shard statistics merge in global shard order — a fixed order, so
    // the float accumulators are reproducible at every worker count.  The
    // worker that owns global shard `g` is `g mod workers`; its local index
    // for that shard is `g div workers` (serial runs are one worker owning
    // every shard in global order).
    let stride = outputs.len();
    let mut entries = 0usize;
    for shard in 0..shards {
        let slice = &outputs[shard % stride].slices[shard / stride];
        entries += slice.len();
        stats.directory.merge(slice.stats());
    }
    for output in &mut outputs {
        outcomes.append(&mut output.outcomes);
    }
    outcomes.sort_unstable_by_key(|record| record.seq);
    let outcome_digest = if record {
        digest_outcomes(&outcomes)
    } else {
        0
    };

    ServiceReport {
        organization,
        shards,
        workers,
        requests,
        batches,
        entries,
        stats,
        outcomes,
        outcome_digest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccd_common::CacheId;

    fn ops(n: u64) -> Vec<DirectoryOp> {
        // A deterministic little op mix touching a handful of lines from a
        // handful of caches, including removals.
        (0..n)
            .map(|i| {
                let line = LineAddr::from_block_number(i * 7 % 64);
                let cache = CacheId::new((i % 8) as u32);
                match i % 5 {
                    0 | 1 => DirectoryOp::AddSharer { line, cache },
                    2 => DirectoryOp::SetExclusive { line, cache },
                    3 => DirectoryOp::RemoveSharer { line, cache },
                    _ => DirectoryOp::Probe { line },
                }
            })
            .collect()
    }

    fn build(shards: usize, workers: usize) -> DirectoryService {
        DirectoryService::build_standard(
            ServiceConfig::new("sparse-4x64-c8", shards, workers).with_batch(16),
        )
        .unwrap()
    }

    #[test]
    fn build_reports_geometry_and_labels() {
        let service = build(4, 2);
        assert_eq!(service.capacity(), 4 * 64);
        assert_eq!(service.num_caches(), 8);
        assert!(service.organization().starts_with("service4x["));
        // The label ignores the worker count.
        assert_eq!(build(4, 1).organization(), service.organization());
    }

    #[test]
    fn concurrent_run_matches_the_serial_reference() {
        let stream = ops(5_000);
        let serial = build(4, 1).run_serial(stream.iter().copied());
        for workers in [1, 2, 4] {
            let report = build(4, workers).run(stream.iter().copied());
            assert_eq!(report.workers, workers);
            assert_eq!(
                report.semantics(),
                serial.semantics(),
                "{workers} workers must be bit-identical to serial"
            );
        }
        assert_eq!(serial.requests, 5_000);
        assert_eq!(serial.outcomes.len(), 5_000);
        assert!(serial.stats.directory.insertions.get() > 0);
        // The log is sequence-ordered and dense.
        for (i, record) in serial.outcomes.iter().enumerate() {
            assert_eq!(record.seq, i as u64);
        }
    }

    #[test]
    fn different_shard_counts_are_different_semantics() {
        let stream = ops(2_000);
        let two = build(2, 1).run_serial(stream.iter().copied());
        let four = build(4, 1).run_serial(stream.iter().copied());
        assert_eq!(two.requests, four.requests);
        assert_ne!(two.organization, four.organization);
    }

    #[test]
    fn outcome_recording_can_be_disabled() {
        let stream = ops(1_000);
        let config = ServiceConfig::new("sparse-4x64-c8", 2, 2).with_outcomes(false);
        let report = DirectoryService::build_standard(config)
            .unwrap()
            .run(stream.into_iter());
        assert!(report.outcomes.is_empty());
        assert_eq!(report.outcome_digest, 0);
        assert_eq!(report.requests, 1_000);
    }

    #[test]
    fn load_checks_reject_core_overflow() {
        let service = build(2, 1);
        let load = LoadSpec::parse("oracle", 16, 1, 100).unwrap();
        assert!(service.check_load(&load).is_err(), "8 caches, 16 cores");
        let load = LoadSpec::parse("oracle", 8, 1, 100).unwrap();
        assert!(build(2, 1).run_load(&load).is_ok());
    }

    #[test]
    fn service_stats_merge_uses_the_mergeable_machinery() {
        let stream = ops(1_000);
        let half_a = build(2, 1).run_serial(stream[..500].iter().copied());
        let half_b = build(2, 1).run_serial(stream[500..].iter().copied());
        let whole_requests = half_a.stats.requests.get() + half_b.stats.requests.get();
        let mut merged = half_a.stats.clone();
        merged.merge(&half_b.stats);
        assert_eq!(merged.requests.get(), whole_requests);
        assert_eq!(
            merged.directory.lookups.get(),
            half_a.stats.directory.lookups.get() + half_b.stats.directory.lookups.get()
        );
    }
}
