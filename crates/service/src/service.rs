//! The concurrent shard-per-worker directory service.
//!
//! # Topology
//!
//! ```text
//!             ┌────────────── DirectoryService::run ──────────────┐
//!             │                                                   │
//! ops ──► router (caller thread)                                  │
//!             │  seq-stamp, route by block % shards,              │
//!             │  batch per owning worker                          │
//!             ├─── bounded channel ──► worker 0 ── shards 0,W,2W… │
//!             ├─── bounded channel ──► worker 1 ── shards 1,W+1,… │
//!             └─── bounded channel ──► worker W-1 ─ shards …      │
//! ```
//!
//! Every shard is owned by exactly one worker, so the hot path takes no
//! lock: a worker's only synchronization is the bounded ingestion channel
//! it drains batches from (and the allocation-recycling return channel it
//! offers drained batch buffers back on).  Batches are applied through the
//! directories' own batched fast path — [`Directory::apply_batch`] when a
//! worker owns a single shard, and the same window-prefetch discipline
//! ([`Directory::prefetch_line`] per [`ccd_directory::APPLY_BATCH_WINDOW`])
//! across shards
//! otherwise.
//!
//! # Determinism contract
//!
//! The shard count fixes the service's *semantics*; the worker count is
//! *pure parallelism*:
//!
//! 1. the router stamps requests with their global sequence number and
//!    routes in input order,
//! 2. each worker's channel is FIFO, so each shard observes exactly the
//!    per-address (in fact per-shard) subsequence of the input stream, in
//!    input order, regardless of how many workers exist,
//! 3. statistics merge in global shard order and outcome logs merge by
//!    sequence number.
//!
//! Consequently, for a fixed shard count, **every worker count produces
//! bit-identical outcome logs, statistics and shard contents** — equal to
//! [`DirectoryService::run_serial`], the inline reference that applies the
//! same per-shard streams on the calling thread with no channels at all.
//! `crates/service/tests/service_determinism.rs` enforces this across
//! scenario families, trace replays and (workers × shards) grids.
//!
//! The contract extends to **failure paths**: workers run supervised (see
//! [`crate::supervisor`]), and when a worker crashes under a
//! recoverable [`FaultPlan`](crate::fault::FaultPlan) the supervisor
//! rebuilds its shards by deterministic replay of the sequenced request
//! journal and resumes — the post-recovery report still matches the
//! fault-free serial reference ([`ServiceReport::recovery_semantics`]).
//! Unrecoverable crashes surface as
//! [`crate::ServiceError::WorkerCrashed`]
//! instead of aborting the process.

use crate::config::ServiceConfig;
use crate::error::ServiceError;
use crate::load::LoadSpec;
use crate::request::{digest_outcome_semantics, digest_outcomes, OutcomeRecord, Request};
use crate::resize::ResizePolicy;
use crate::supervisor;
use ccd_common::stats::{Counter, MetricSet, MetricSnapshot};
use ccd_common::{ConfigError, LineAddr};
use ccd_directory::{
    BuilderRegistry, DepthMetrics, Directory, DirectoryOp, DirectorySpec, DirectoryStats, Outcome,
};
use ccd_obs::{EventKind, FlightRecorder, FlightRecording, ObsConfig};
use std::fmt;

/// Snapshot-consistent service statistics, built from the same mergeable
/// machinery the simulation engine uses ([`Counter::merge`],
/// [`DirectoryStats::merge`]).
///
/// A snapshot is taken after the ingestion stream is fully drained and all
/// workers have quiesced, so it is consistent by construction: every
/// counter reflects exactly the same prefix of the request stream (all of
/// it).  Per-shard directory statistics merge in global shard order — a
/// fixed order — so even the floating-point accumulators inside
/// [`DirectoryStats`] are bit-identical across worker counts.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServiceStats {
    /// Requests applied (equals the requests ingested once drained).
    pub requests: Counter,
    /// Semantic invalidation targets across all requests.
    pub invalidations: Counter,
    /// Cached-block invalidations forced by directory-capacity conflicts.
    pub forced_invalidations: Counter,
    /// Batch offers the admission-control gate shed (counted, then
    /// re-offered — shedding never loses a request).  Always zero without
    /// an armed `shed` fault clause.
    pub shed: Counter,
    /// Worker crashes the supervisor recovered from by journal replay.
    /// Always zero without an armed `crash@` fault clause.
    pub recoveries: Counter,
    /// Shard live-resize operations fired by an armed
    /// [`ResizePolicy`].  Always zero without one.  Firing points are
    /// shard-local epoch boundaries, so the count is identical at every
    /// worker count and across journal-replay recovery.
    pub resizes: Counter,
    /// Directory statistics merged across all shards, in shard order.
    pub directory: DirectoryStats,
}

impl ServiceStats {
    /// An empty snapshot.
    #[must_use]
    pub fn new() -> Self {
        ServiceStats::default()
    }

    /// Merges another snapshot into this one.  Integer counters merge
    /// order-independently; merge [`ServiceStats::directory`] snapshots in
    /// a fixed order when bit-exact float reproducibility matters.
    pub fn merge(&mut self, other: &ServiceStats) {
        self.requests.merge(&other.requests);
        self.invalidations.merge(&other.invalidations);
        self.forced_invalidations.merge(&other.forced_invalidations);
        self.shed.merge(&other.shed);
        self.recoveries.merge(&other.recoveries);
        self.resizes.merge(&other.resizes);
        self.directory.merge(&other.directory);
    }
}

/// What the observability layer recorded over one run: the merged metric
/// snapshot plus the flight recordings, assembled by the same `finish`
/// path that builds the rest of the report.
///
/// The **metric snapshot is worker-count invariant**: counters come from
/// the merged [`ServiceStats`] (scheduling-dependent ones — shed,
/// recoveries, batch counts — are deliberately excluded) and the depth
/// distributions merge in global shard order, so
/// [`ccd_obs::expo::render_json`] of the snapshot is byte-identical for a
/// serial run and any worker count.  The **flight recordings are not**:
/// they narrate how work was scheduled (per-worker batch spans, router
/// events), which legitimately depends on the worker count.  For a fixed
/// topology a recording is run-to-run bit-reproducible whenever
/// scheduling itself is deterministic — which includes armed shed gates,
/// stalls and resize policies, but *not* injected crashes: crash
/// *detection* is a thread race, so the position of crash/recovery/replay
/// events relative to routed batches (and the journal length a replay
/// reports) varies between runs even though every crash fires at its
/// scheduled sequence number and semantics stay bit-identical.
///
/// The whole struct is excluded from [`ServiceReport::semantics`] and its
/// sibling views: observation output is not semantics (contract #11).
#[derive(Clone, Debug, PartialEq)]
pub struct ObsReport {
    /// The canonical label of the armed [`ObsConfig`].
    pub label: String,
    /// The merged, worker-count-invariant metric snapshot.
    pub metrics: MetricSnapshot,
    /// The router-side flight recording (`None` for serial runs or a
    /// ring-less config).
    pub router: Option<FlightRecording>,
    /// Per-worker flight recordings, in worker-index order (empty for a
    /// ring-less config).
    pub workers: Vec<FlightRecording>,
}

/// The result of running a service to completion over one request stream.
#[derive(Clone, Debug, PartialEq)]
pub struct ServiceReport {
    /// Label of the shard organization, e.g. `service8x[Cuckoo 1x (4-way)]`.
    /// Deliberately independent of the worker count.
    pub organization: String,
    /// Number of address-interleaved shards.
    pub shards: usize,
    /// Worker threads used (`1` for [`DirectoryService::run_serial`]).
    pub workers: usize,
    /// Requests applied.
    pub requests: u64,
    /// Ingestion batches drained.  A scheduling detail, not semantics: the
    /// batch count depends on how requests split across workers, so it is
    /// excluded from [`ServiceReport::semantics`].
    pub batches: u64,
    /// Directory entries resident across all shards after the drain.
    pub entries: usize,
    /// The merged statistics snapshot.
    pub stats: ServiceStats,
    /// The sequence-ordered outcome log (empty when
    /// [`ServiceConfig::record_outcomes`] is off).
    pub outcomes: Vec<OutcomeRecord>,
    /// FNV-1a digest of the outcome log ([`digest_outcomes`]).
    pub outcome_digest: u64,
    /// What the observability layer recorded, when one was armed.
    /// Excluded from every semantics view — the explicit field lists in
    /// [`ServiceReport::semantics`] and its siblings are what enforces
    /// contract #11 at the report level.
    pub obs: Option<ObsReport>,
}

impl ServiceReport {
    /// The worker-count-independent part of the report — everything the
    /// determinism contract says must be bit-identical for a fixed shard
    /// count.  Two reports with equal `semantics()` applied the same
    /// per-shard streams to the same effect.
    #[must_use]
    #[allow(clippy::type_complexity)]
    pub fn semantics(
        &self,
    ) -> (
        &str,
        usize,
        u64,
        usize,
        &ServiceStats,
        &[OutcomeRecord],
        u64,
    ) {
        (
            &self.organization,
            self.shards,
            self.requests,
            self.entries,
            &self.stats,
            &self.outcomes,
            self.outcome_digest,
        )
    }

    /// The part of the report the **fault-recovery** determinism contract
    /// covers: [`ServiceReport::semantics`] minus the two counters that
    /// describe the failure handling itself ([`ServiceStats::shed`],
    /// [`ServiceStats::recoveries`]).
    ///
    /// A run under a recoverable fault plan must match the fault-free
    /// serial reference on this view: shedding and recovery may change how
    /// work was scheduled and accounted, never what it computed.
    #[must_use]
    #[allow(clippy::type_complexity)]
    pub fn recovery_semantics(
        &self,
    ) -> (
        &str,
        usize,
        u64,
        usize,
        (u64, u64, u64),
        &DirectoryStats,
        &[OutcomeRecord],
        u64,
    ) {
        (
            &self.organization,
            self.shards,
            self.requests,
            self.entries,
            (
                self.stats.requests.get(),
                self.stats.invalidations.get(),
                self.stats.forced_invalidations.get(),
            ),
            &self.stats.directory,
            &self.outcomes,
            self.outcome_digest,
        )
    }

    /// The part of the report the **live-resize** determinism contract
    /// covers: what the service *decided*, independent of how hard it
    /// worked deciding it.
    ///
    /// A run whose shards grew mid-stream to some final geometry must match
    /// a statically provisioned run at that geometry on this view —
    /// provided neither run forced evictions (a discard permanently changes
    /// which entries are resident, after which the streams legitimately
    /// diverge).  Excluded relative to [`ServiceReport::semantics`]:
    ///
    /// * the organization label (it embeds the *initial* geometry),
    /// * insertion-attempt counts, per request and aggregated (different
    ///   occupancy histories mean different displacement chains), which is
    ///   why the outcome log is compared through
    ///   [`digest_outcome_semantics`] and the directory stats are dropped,
    /// * the resize bookkeeping itself ([`ServiceStats::resizes`]).
    #[must_use]
    pub fn resize_semantics(&self) -> (usize, u64, usize, (u64, u64, u64), u64) {
        (
            self.shards,
            self.requests,
            self.entries,
            (
                self.stats.requests.get(),
                self.stats.invalidations.get(),
                self.stats.forced_invalidations.get(),
            ),
            digest_outcome_semantics(&self.outcomes),
        )
    }
}

/// A built directory service: `shards` independent directory slices plus
/// the topology that will drive them.  Consume it with
/// [`DirectoryService::run`] (concurrent) or
/// [`DirectoryService::run_serial`] (the inline reference).
pub struct DirectoryService {
    pub(crate) config: ServiceConfig,
    pub(crate) slices: Vec<Box<dyn Directory>>,
    pub(crate) organization: String,
    /// Kept for the supervisor: a crashed worker's shards are rebuilt from
    /// the same registry and per-shard spec the service was built from.
    pub(crate) registry: BuilderRegistry,
    pub(crate) slice_spec: DirectorySpec,
    /// The effective observability config: the builder's explicit choice,
    /// else a `CCD_OBS` environment override, else dark.
    pub(crate) obs: Option<ObsConfig>,
}

impl fmt::Debug for DirectoryService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DirectoryService")
            .field("organization", &self.organization)
            .field("shards", &self.config.shards)
            .field("workers", &self.config.workers)
            .finish_non_exhaustive()
    }
}

impl DirectoryService {
    /// Builds the service's shards from `config` using `registry`.
    ///
    /// The spec's set count is divided across the shards, so the total
    /// capacity is the same for every shard count (exactly like the
    /// `shardedN:` spec prefix).
    ///
    /// # Errors
    ///
    /// See [`ServiceConfig::validate`] and [`BuilderRegistry::build`].
    pub fn build(config: ServiceConfig, registry: &BuilderRegistry) -> Result<Self, ConfigError> {
        let spec = config.validate()?;
        let slice_spec = DirectorySpec {
            sets: spec.sets / config.shards,
            ..spec
        };
        let mut slices = (0..config.shards)
            .map(|_| registry.build(&slice_spec))
            .collect::<Result<Vec<_>, _>>()?;
        // Resolve the effective observability layer: an explicit config
        // wins, then the CCD_OBS environment override, then dark.  Arming
        // the slices' depth distributions is observational only — nothing
        // result-bearing changes (contract #11).
        let obs = match config.obs.clone() {
            Some(obs) => Some(obs),
            None => ObsConfig::from_env()?,
        };
        if let Some(obs) = obs.as_ref() {
            for slice in &mut slices {
                slice.arm_depth_metrics(obs.sig_bits());
            }
        }
        let organization = format!("service{}x[{}]", config.shards, slices[0].organization());
        Ok(DirectoryService {
            config,
            slices,
            organization,
            registry: registry.clone(),
            slice_spec,
            obs,
        })
    }

    /// [`DirectoryService::build`] with the standard six-organization
    /// registry (`ccd_cuckoo::standard_registry`).
    ///
    /// # Errors
    ///
    /// See [`DirectoryService::build`].
    pub fn build_standard(config: ServiceConfig) -> Result<Self, ConfigError> {
        Self::build(config, &ccd_cuckoo::standard_registry())
    }

    /// The service's organization label (independent of the worker count).
    #[must_use]
    pub fn organization(&self) -> &str {
        &self.organization
    }

    /// Number of tracked caches per shard.
    #[must_use]
    pub fn num_caches(&self) -> usize {
        self.slices[0].num_caches()
    }

    /// Total entry capacity across all shards.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slices.iter().map(|s| s.capacity()).sum()
    }

    /// Checks that `load` fits this service (its cores map onto tracked
    /// caches, its workload validates for the configured request count).
    ///
    /// # Errors
    ///
    /// [`ConfigError::Inconsistent`] on a core/cache mismatch, or the
    /// load's own validation error.
    pub fn check_load(&self, load: &LoadSpec) -> Result<(), ConfigError> {
        if load.cores > self.num_caches() {
            return Err(ConfigError::Inconsistent {
                what: "load generates references for more cores than the \
                       directory spec tracks caches (add a `-cN` modifier)",
            });
        }
        load.validate()
    }

    /// Streams `load` through the concurrent service.
    ///
    /// # Errors
    ///
    /// See [`DirectoryService::check_load`] and [`DirectoryService::run`].
    pub fn run_load(self, load: &LoadSpec) -> Result<ServiceReport, ServiceError> {
        self.check_load(load)?;
        let ops = load.ops()?;
        self.run(ops)
    }

    /// Streams `load` through the inline serial reference.
    ///
    /// # Errors
    ///
    /// See [`DirectoryService::check_load`].
    pub fn run_load_serial(self, load: &LoadSpec) -> Result<ServiceReport, ServiceError> {
        self.check_load(load)?;
        let ops = load.ops()?;
        Ok(self.run_serial(ops))
    }

    /// Routes `op`'s line: the owning global shard and the shard-local line.
    #[inline]
    pub(crate) fn route(shards: u64, line: LineAddr) -> (usize, LineAddr) {
        let block = line.block_number();
        (
            (block % shards) as usize,
            LineAddr::from_block_number(block / shards),
        )
    }

    /// Runs the service over `ops`: spawns one supervised worker thread per
    /// configured worker, ingests the stream in batches with backpressure
    /// from the calling thread, drains everything, joins the workers and
    /// assembles the snapshot.  See the module docs for the determinism
    /// contract and [`crate::supervisor`] for the failure
    /// handling.
    ///
    /// # Errors
    ///
    /// [`ServiceError::WorkerCrashed`] when a worker panics and the
    /// supervisor cannot recover it: the panic was not an injected fault,
    /// or the fault plan scheduled it as unrecoverable (`abort@`).
    pub fn run(
        self,
        ops: impl Iterator<Item = DirectoryOp>,
    ) -> Result<ServiceReport, ServiceError> {
        supervisor::run_concurrent(self, ops)
    }

    /// The serial reference: applies the same per-shard streams inline on
    /// the calling thread — no workers, no channels, no batching.  Any
    /// concurrent run over the same shard count must match this
    /// bit-identically (see [`ServiceReport::semantics`]).
    #[must_use]
    pub fn run_serial(mut self, ops: impl Iterator<Item = DirectoryOp>) -> ServiceReport {
        let shards = self.config.shards;
        let record = self.config.record_outcomes;
        let resize = self.config.resize_policy.clone();
        let obs = self.obs.clone();
        let mut output = WorkerOutput::new(0, std::mem::take(&mut self.slices));
        output.arm_obs(obs.as_ref());
        let mut out = Outcome::new();
        for (seq, op) in ops.enumerate() {
            let (shard, local) = Self::route(shards as u64, op.line());
            output.slices[shard].apply(op.with_line(local), &mut out);
            output.applied += 1;
            absorb_into(
                &mut output.outcomes,
                &mut output.invalidations,
                &mut output.forced_invalidations,
                seq as u64,
                shard as u32,
                &out,
                record,
            );
            // Same order as the worker path: apply, absorb, then count the
            // request towards the shard's resize epoch.
            if let Some(policy) = resize.as_ref() {
                maybe_resize(&mut output, shard, shard as u32, policy);
            }
        }
        // One "worker" owning every shard in global order.
        finish(
            self.organization,
            shards,
            1,
            vec![output],
            record,
            0,
            0,
            obs.as_ref(),
            None,
        )
    }
}

/// What one worker hands back when its queue closes.
pub(crate) struct WorkerOutput {
    /// The worker's index (`global shard = index + local · workers`).
    pub(crate) index: usize,
    /// The owned slices, in local order.
    pub(crate) slices: Vec<Box<dyn Directory>>,
    pub(crate) outcomes: Vec<OutcomeRecord>,
    pub(crate) applied: u64,
    pub(crate) batches: u64,
    pub(crate) invalidations: u64,
    pub(crate) forced_invalidations: u64,
    /// Requests applied per owned shard (local order).  Only maintained
    /// while a resize policy is armed: its epochs are defined over this
    /// count, which depends on nothing but the shard's own subsequence of
    /// the input stream.
    pub(crate) shard_applied: Vec<u64>,
    /// Resize firings per owned shard (local order), bounding the policy's
    /// `max` clause.
    pub(crate) shard_resizes: Vec<u32>,
    /// Total resize firings across this worker's shards.
    pub(crate) resizes: u64,
    /// The worker's flight recorder, when an observability config with a
    /// ring is armed.  `None` costs one branch per record site.
    pub(crate) recorder: Option<FlightRecorder>,
}

impl WorkerOutput {
    pub(crate) fn new(index: usize, slices: Vec<Box<dyn Directory>>) -> Self {
        let owned = slices.len();
        WorkerOutput {
            index,
            slices,
            outcomes: Vec::new(),
            applied: 0,
            batches: 0,
            invalidations: 0,
            forced_invalidations: 0,
            shard_applied: vec![0; owned],
            shard_resizes: vec![0; owned],
            resizes: 0,
            recorder: None,
        }
    }

    /// Arms the worker's flight recorder from the effective observability
    /// config (a ring-less config keeps the recorder off).
    pub(crate) fn arm_obs(&mut self, obs: Option<&ObsConfig>) {
        self.recorder = obs
            .filter(|cfg| cfg.records_events())
            .map(|cfg| FlightRecorder::new(cfg.ring(), cfg.spans()));
    }

    /// Opens the batch-application span (no-op unless spans are armed).
    /// Virtual time is the batch's first request sequence number.
    pub(crate) fn batch_span_begin(&mut self, requests: &[Request]) {
        if let (Some(recorder), Some(first)) = (self.recorder.as_mut(), requests.first()) {
            recorder.span_begin(self.index as u16, first.seq, requests.len() as u64);
        }
    }

    /// Records the applied batch and closes its span.  Virtual times are
    /// the batch's first and last request sequence numbers.
    pub(crate) fn batch_applied(&mut self, requests: &[Request]) {
        let Some(recorder) = self.recorder.as_mut() else {
            return;
        };
        let (Some(first), Some(last)) = (requests.first(), requests.last()) else {
            return;
        };
        let lane = self.index as u16;
        recorder.record(
            EventKind::BatchApplied,
            lane,
            first.seq,
            requests.len() as u64,
        );
        recorder.span_end(lane, last.seq, requests.len() as u64);
    }
}

/// The live-resize kernel shared by the worker path and the serial
/// reference: counts the request just applied to (local) shard `shard`
/// and, at an epoch boundary, consults the policy and resizes the slice in
/// place.  Runs at exactly the same points of a shard's stream no matter
/// which thread owns it, which is the whole determinism argument.
///
/// Non-resizable organizations ([`Directory::geometry`] `None` or
/// [`Directory::live_resize`] returning `Ok(false)`) make this a silent
/// no-op.
///
/// # Panics
///
/// When the policy's target geometry is invalid for the organization (for
/// example re-waying past a pinned probe kernel's limit).  That is a
/// configuration error, not a runtime condition, and surfacing it beats
/// silently diverging from the schedule.
pub(crate) fn maybe_resize(
    output: &mut WorkerOutput,
    shard: usize,
    global_shard: u32,
    policy: &ResizePolicy,
) {
    output.shard_applied[shard] += 1;
    if !output.shard_applied[shard].is_multiple_of(policy.every()) {
        return;
    }
    let slice = &mut output.slices[shard];
    if !policy.should_fire(slice.len(), slice.capacity(), output.shard_resizes[shard]) {
        return;
    }
    let Some((ways, sets)) = slice.geometry() else {
        return;
    };
    let (new_ways, new_sets) = policy.next_geometry(ways, sets);
    match slice.live_resize(new_ways, new_sets) {
        Ok(true) => {
            output.shard_resizes[shard] += 1;
            output.resizes += 1;
            // Virtual time: the shard's own request tick, a pure function
            // of its subsequence — identical at every worker count.
            if let Some(recorder) = output.recorder.as_mut() {
                recorder.record(
                    EventKind::ResizeFired,
                    global_shard as u16,
                    output.shard_applied[shard],
                    new_sets as u64,
                );
            }
        }
        Ok(false) => {}
        Err(err) => panic!(
            "resize policy `{}` produced a geometry ({new_ways}x{new_sets}) \
             the organization rejects: {err}",
            policy.label()
        ),
    }
}

/// The outcome-accounting kernel shared by both worker paths and the
/// serial reference (free function so closures can borrow the output
/// fields disjointly from the slices).
#[allow(clippy::too_many_arguments)]
pub(crate) fn absorb_into(
    outcomes: &mut Vec<OutcomeRecord>,
    invalidations: &mut u64,
    forced_invalidations: &mut u64,
    seq: u64,
    global_shard: u32,
    out: &Outcome,
    record: bool,
) {
    *invalidations += out.invalidate().len() as u64;
    *forced_invalidations += out.forced_invalidation_count() as u64;
    if record {
        outcomes.push(OutcomeRecord::capture(seq, global_shard, out));
    }
}

/// Reassembles worker outputs into the final report: shards back into
/// global order, per-shard statistics merged in that (fixed) order,
/// outcome logs merged by sequence number.  `shed` and `recoveries` come
/// from the supervisor (always 0 for serial runs), as does the router's
/// flight recording (`None` for serial runs).
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish(
    organization: String,
    shards: usize,
    workers: usize,
    mut outputs: Vec<WorkerOutput>,
    record: bool,
    shed: u64,
    recoveries: u64,
    obs: Option<&ObsConfig>,
    router: Option<FlightRecording>,
) -> ServiceReport {
    outputs.sort_by_key(|output| output.index);
    debug_assert!(outputs
        .iter()
        .enumerate()
        .all(|(index, output)| output.index == index));

    let mut stats = ServiceStats::new();
    let mut requests = 0u64;
    let mut outcomes: Vec<OutcomeRecord> = Vec::new();
    let mut batches = 0u64;
    for output in &outputs {
        requests += output.applied;
        batches += output.batches;
        stats.invalidations.add(output.invalidations);
        stats.forced_invalidations.add(output.forced_invalidations);
        stats.resizes.add(output.resizes);
    }
    stats.requests.add(requests);
    stats.shed.add(shed);
    stats.recoveries.add(recoveries);
    // Per-shard statistics merge in global shard order — a fixed order, so
    // the float accumulators are reproducible at every worker count.  The
    // worker that owns global shard `g` is `g mod workers`; its local index
    // for that shard is `g div workers` (serial runs are one worker owning
    // every shard in global order).
    let stride = outputs.len();
    let mut entries = 0usize;
    for shard in 0..shards {
        let slice = &outputs[shard % stride].slices[shard / stride];
        entries += slice.len();
        stats.directory.merge(slice.stats());
    }
    // The observability report rides the same reassembly.  Counters come
    // from the merged stats (scheduling-dependent ones — shed, recoveries,
    // batches — deliberately excluded) and the depth distributions merge
    // in global shard order, so the snapshot is worker-count invariant;
    // its registration order is fixed here and nowhere else.
    let obs = obs.map(|cfg| {
        let mut metrics = MetricSet::new();
        for (name, value) in [
            ("requests", requests),
            ("invalidations", stats.invalidations.get()),
            ("forced_invalidations", stats.forced_invalidations.get()),
            ("resizes", stats.resizes.get()),
            ("entries", entries as u64),
        ] {
            let id = metrics.counter(name);
            metrics.add(id, value);
        }
        let mut depth = DepthMetrics::new(cfg.sig_bits());
        for shard in 0..shards {
            if let Some(recorded) = outputs[shard % stride].slices[shard / stride].depth_metrics() {
                depth.merge(recorded);
            }
        }
        depth.register_into(&mut metrics);
        ObsReport {
            label: cfg.label().to_string(),
            metrics: metrics.snapshot(),
            router,
            workers: outputs
                .iter()
                .filter_map(|output| output.recorder.as_ref().map(FlightRecorder::finish))
                .collect(),
        }
    });
    for output in &mut outputs {
        outcomes.append(&mut output.outcomes);
    }
    outcomes.sort_unstable_by_key(|record| record.seq);
    let outcome_digest = if record {
        digest_outcomes(&outcomes)
    } else {
        0
    };

    ServiceReport {
        organization,
        shards,
        workers,
        requests,
        batches,
        entries,
        stats,
        outcomes,
        outcome_digest,
        obs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccd_common::CacheId;

    fn ops(n: u64) -> Vec<DirectoryOp> {
        // A deterministic little op mix touching a handful of lines from a
        // handful of caches, including removals.
        (0..n)
            .map(|i| {
                let line = LineAddr::from_block_number(i * 7 % 64);
                let cache = CacheId::new((i % 8) as u32);
                match i % 5 {
                    0 | 1 => DirectoryOp::AddSharer { line, cache },
                    2 => DirectoryOp::SetExclusive { line, cache },
                    3 => DirectoryOp::RemoveSharer { line, cache },
                    _ => DirectoryOp::Probe { line },
                }
            })
            .collect()
    }

    fn build(shards: usize, workers: usize) -> DirectoryService {
        DirectoryService::build_standard(
            ServiceConfig::new("sparse-4x64-c8", shards, workers).with_batch(16),
        )
        .unwrap()
    }

    #[test]
    fn build_reports_geometry_and_labels() {
        let service = build(4, 2);
        assert_eq!(service.capacity(), 4 * 64);
        assert_eq!(service.num_caches(), 8);
        assert!(service.organization().starts_with("service4x["));
        // The label ignores the worker count.
        assert_eq!(build(4, 1).organization(), service.organization());
    }

    #[test]
    fn concurrent_run_matches_the_serial_reference() {
        let stream = ops(5_000);
        let serial = build(4, 1).run_serial(stream.iter().copied());
        for workers in [1, 2, 4] {
            let report = build(4, workers).run(stream.iter().copied()).unwrap();
            assert_eq!(report.workers, workers);
            assert_eq!(
                report.semantics(),
                serial.semantics(),
                "{workers} workers must be bit-identical to serial"
            );
        }
        assert_eq!(serial.requests, 5_000);
        assert_eq!(serial.outcomes.len(), 5_000);
        assert!(serial.stats.directory.insertions.get() > 0);
        // The log is sequence-ordered and dense.
        for (i, record) in serial.outcomes.iter().enumerate() {
            assert_eq!(record.seq, i as u64);
        }
    }

    #[test]
    fn different_shard_counts_are_different_semantics() {
        let stream = ops(2_000);
        let two = build(2, 1).run_serial(stream.iter().copied());
        let four = build(4, 1).run_serial(stream.iter().copied());
        assert_eq!(two.requests, four.requests);
        assert_ne!(two.organization, four.organization);
    }

    #[test]
    fn outcome_recording_can_be_disabled() {
        let stream = ops(1_000);
        let config = ServiceConfig::new("sparse-4x64-c8", 2, 2).with_outcomes(false);
        let report = DirectoryService::build_standard(config)
            .unwrap()
            .run(stream.into_iter())
            .unwrap();
        assert!(report.outcomes.is_empty());
        assert_eq!(report.outcome_digest, 0);
        assert_eq!(report.requests, 1_000);
    }

    #[test]
    fn load_checks_reject_core_overflow() {
        let service = build(2, 1);
        let load = LoadSpec::parse("oracle", 16, 1, 100).unwrap();
        assert!(service.check_load(&load).is_err(), "8 caches, 16 cores");
        let load = LoadSpec::parse("oracle", 8, 1, 100).unwrap();
        assert!(build(2, 1).run_load(&load).is_ok());
    }

    #[test]
    fn service_stats_merge_uses_the_mergeable_machinery() {
        let stream = ops(1_000);
        let half_a = build(2, 1).run_serial(stream[..500].iter().copied());
        let half_b = build(2, 1).run_serial(stream[500..].iter().copied());
        let whole_requests = half_a.stats.requests.get() + half_b.stats.requests.get();
        let mut merged = half_a.stats.clone();
        merged.merge(&half_b.stats);
        assert_eq!(merged.requests.get(), whole_requests);
        assert_eq!(
            merged.directory.lookups.get(),
            half_a.stats.directory.lookups.get() + half_b.stats.directory.lookups.get()
        );
    }
}
