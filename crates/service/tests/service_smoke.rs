//! Quick service smoke test, honoring `CCD_WORKERS` and `CCD_FAULTS`.
//!
//! CI runs this under `CCD_WORKERS=1` and `CCD_WORKERS=4`, so the inline
//! single-worker topology and a genuinely concurrent one are both
//! exercised against the serial reference on every push — plus a
//! `CCD_FAULTS` variant that arms a crash plan and checks the service
//! recovers to the same answer.

use ccd_service::{DirectoryService, LoadSpec, ServiceConfig};

fn workers_from_env() -> usize {
    match std::env::var("CCD_WORKERS") {
        Err(std::env::VarError::NotPresent) => 2,
        Ok(raw) => match raw.trim().parse() {
            Ok(workers) if workers >= 1 => workers,
            // Loud, like ParallelRunner::from_env — never silently coerced.
            _ => panic!(
                "CCD_WORKERS `{}`: expected a positive worker count",
                raw.trim()
            ),
        },
        Err(e) => panic!("CCD_WORKERS unreadable: {e:?}"),
    }
}

/// An optional `faults-…` spec string (see `ccd_service::FaultPlan`) armed
/// on the concurrent run only.  Bad specs fail loudly, never silently.
fn fault_spec_from_env() -> Option<String> {
    match std::env::var("CCD_FAULTS") {
        Err(std::env::VarError::NotPresent) => None,
        Ok(raw) if raw.trim().is_empty() => None,
        Ok(raw) => Some(raw.trim().to_string()),
        Err(e) => panic!("CCD_FAULTS unreadable: {e:?}"),
    }
}

#[test]
fn smoke_service_matches_serial_at_the_env_worker_count() {
    let workers = workers_from_env();
    // The next power of two always divides the spec's 4096 sets (for any
    // worker count up to 4096), so every valid CCD_WORKERS value yields a
    // valid topology — not just the 1 and 4 that CI exercises.
    let shards = workers.next_power_of_two().max(4);
    let load = LoadSpec::parse("oracle", 16, 0xCAFE, 30_000).expect("oracle parses");

    let serial =
        DirectoryService::build_standard(ServiceConfig::new("cuckoo-4x4096-c16", shards, 1))
            .expect("smoke topology builds")
            .run_load_serial(&load)
            .expect("serial reference runs");
    let mut config = ServiceConfig::new("cuckoo-4x4096-c16", shards, workers);
    let faults = fault_spec_from_env();
    if let Some(spec) = &faults {
        config = config
            .with_fault_spec(spec)
            .unwrap_or_else(|e| panic!("CCD_FAULTS `{spec}`: {e}"));
    }
    let report = DirectoryService::build_standard(config)
        .expect("smoke topology builds")
        .run_load(&load)
        .expect("service runs (and recovers, under CCD_FAULTS)");

    assert_eq!(report.workers, workers);
    assert_eq!(report.requests, 30_000);
    assert!(report.stats.directory.insertions.get() > 0);
    if faults.is_some() {
        // Under an armed fault plan the `shed`/`recoveries` counters may
        // differ from the (fault-free) serial reference; everything the
        // service *computed* must still match.
        assert_eq!(
            report.recovery_semantics(),
            serial.recovery_semantics(),
            "service with {workers} workers under `{:?}` must recover to \
             the serial answer",
            faults
        );
    } else {
        assert_eq!(
            report.semantics(),
            serial.semantics(),
            "service with {workers} workers must match serial application"
        );
    }
}
