//! Live-resize determinism suite (ARCHITECTURE.md Contract #10).
//!
//! An armed [`ResizePolicy`](ccd_service::ResizePolicy) must not weaken any
//! part of the service's determinism contract:
//!
//! * resize-armed runs are bit-identical across worker counts and equal to
//!   the resize-armed serial reference ([`ServiceReport::semantics`]);
//! * a crash mid-stream recovers by journal replay that *re-fires* the same
//!   resizes, so the post-recovery report still matches the fault-free
//!   armed serial reference ([`ServiceReport::recovery_semantics`]);
//! * a run that grew to some final geometry matches a statically
//!   provisioned serial run at that geometry on the attempt-independent
//!   view ([`ServiceReport::resize_semantics`]), provided neither run
//!   forced evictions;
//! * non-resizable organizations turn an armed policy into a silent no-op.
//!
//! [`ServiceReport::semantics`]: ccd_service::ServiceReport::semantics
//! [`ServiceReport::recovery_semantics`]: ccd_service::ServiceReport::recovery_semantics
//! [`ServiceReport::resize_semantics`]: ccd_service::ServiceReport::resize_semantics

use ccd_common::rng::{Rng64, SplitMix64};
use ccd_common::{CacheId, LineAddr};
use ccd_directory::DirectoryOp;
use ccd_service::{DirectoryService, ServiceConfig};

/// The policy every test arms: grow the set count 2x at 60 % occupancy,
/// checking every 64 requests per shard, once per shard.  The 60 %
/// threshold with a 64-request epoch keeps shards well below saturation
/// when they fire, so no run here ever discards an entry.
const POLICY: &str = "resize-grow2@60-every64-max1";

/// A deterministic stream over ~1200 distinct blocks: mostly sharer adds
/// (so shards actually fill), plus probes and exclusive upgrades.  Roughly
/// 300 distinct blocks land on each of 4 shards — past the 256-entry
/// initial shard capacity of `cuckoo-4x256`, so the run *needs* the grown
/// geometry, and at 58 % of the grown capacity, comfortably inside it.
fn ops(n: u64) -> Vec<DirectoryOp> {
    let mut rng = SplitMix64::new(0x5EED);
    (0..n)
        .map(|i| {
            let line = LineAddr::from_block_number(rng.next_below(1200));
            let cache = CacheId::new((i % 8) as u32);
            match i % 6 {
                0..=3 => DirectoryOp::AddSharer { line, cache },
                4 => DirectoryOp::Probe { line },
                _ => DirectoryOp::SetExclusive { line, cache },
            }
        })
        .collect()
}

fn build(spec: &str, shards: usize, workers: usize, resize: Option<&str>) -> DirectoryService {
    let mut config = ServiceConfig::new(spec, shards, workers).with_batch(64);
    if let Some(policy) = resize {
        config = config.with_resize_spec(policy).unwrap();
    }
    DirectoryService::build_standard(config).unwrap()
}

#[test]
fn armed_runs_are_bit_identical_across_worker_counts() {
    let stream = ops(6_000);
    let serial = build("cuckoo-4x256-c8", 4, 1, Some(POLICY)).run_serial(stream.iter().copied());
    assert_eq!(
        serial.stats.resizes.get(),
        4,
        "every shard must grow exactly once"
    );
    assert_eq!(serial.stats.directory.insertion_failures.get(), 0);
    for workers in [1, 2, 4] {
        let report = build("cuckoo-4x256-c8", 4, workers, Some(POLICY))
            .run(stream.iter().copied())
            .unwrap();
        assert_eq!(
            report.semantics(),
            serial.semantics(),
            "{workers} armed workers must be bit-identical to the armed serial reference"
        );
    }
}

#[test]
fn bfs_specs_obey_the_same_armed_contract() {
    let stream = ops(4_000);
    let serial =
        build("cuckoo-4x256-bfs-c8", 4, 1, Some(POLICY)).run_serial(stream.iter().copied());
    assert!(serial.stats.resizes.get() > 0);
    let report = build("cuckoo-4x256-bfs-c8", 4, 4, Some(POLICY))
        .run(stream.iter().copied())
        .unwrap();
    assert_eq!(report.semantics(), serial.semantics());
}

#[test]
fn a_grown_run_matches_the_statically_provisioned_reference() {
    let stream = ops(6_000);
    // cuckoo-4x256 across 4 shards grows (2x sets per shard) into exactly
    // what cuckoo-4x512 across 4 shards is born as.
    let grown = build("cuckoo-4x256-c8", 4, 1, Some(POLICY)).run_serial(stream.iter().copied());
    let fixed = build("cuckoo-4x512-c8", 4, 1, None).run_serial(stream.iter().copied());
    assert_eq!(grown.stats.resizes.get(), 4);
    assert_eq!(fixed.stats.resizes.get(), 0);
    // The comparison is only meaningful when neither run forced evictions.
    assert_eq!(grown.stats.directory.insertion_failures.get(), 0);
    assert_eq!(fixed.stats.directory.insertion_failures.get(), 0);
    // Labels embed the (different) initial geometries; attempts took
    // different displacement chains — but what the directory decided is
    // identical.
    assert_ne!(grown.organization, fixed.organization);
    assert_eq!(grown.resize_semantics(), fixed.resize_semantics());
    // And the concurrent armed run matches both.
    let concurrent = build("cuckoo-4x256-c8", 4, 2, Some(POLICY))
        .run(stream.iter().copied())
        .unwrap();
    assert_eq!(concurrent.resize_semantics(), fixed.resize_semantics());
}

#[test]
fn resizes_refire_identically_through_journal_replay() {
    let stream = ops(6_000);
    let serial = build("cuckoo-4x256-c8", 4, 1, Some(POLICY)).run_serial(stream.iter().copied());
    // Worker 1 (owning shards 1 and 3) crashes at seq 2000 — well after
    // its shards' resizes fired, so the replay must re-fire them to
    // rebuild identical state.  A second crash point lands inside the
    // journaled range and fires *during* replay.
    let config = ServiceConfig::new("cuckoo-4x256-c8", 4, 2)
        .with_batch(64)
        .with_resize_spec(POLICY)
        .unwrap()
        .with_fault_spec("faults-crash@w1:2000-crash@w1:1500")
        .unwrap();
    let report = DirectoryService::build_standard(config)
        .unwrap()
        .run(stream.iter().copied())
        .unwrap();
    assert!(report.stats.recoveries.get() >= 2);
    assert_eq!(
        report.stats.resizes.get(),
        4,
        "replay rebuilds from scratch; resizes must not double-count"
    );
    assert_eq!(report.recovery_semantics(), serial.recovery_semantics());
}

#[test]
fn non_resizable_organizations_ignore_an_armed_policy() {
    let stream = ops(3_000);
    let armed = build("sparse-4x256-c8", 4, 1, Some(POLICY)).run_serial(stream.iter().copied());
    let unarmed = build("sparse-4x256-c8", 4, 1, None).run_serial(stream.iter().copied());
    assert_eq!(armed.stats.resizes.get(), 0);
    assert_eq!(armed.semantics(), unarmed.semantics());
}
