//! The service's determinism contract, enforced as a property over the
//! topology grid: for a fixed shard count, **every** (workers × shards)
//! configuration must produce outcome streams and merged statistics
//! bit-identical to inline serial application of the same per-address
//! streams — across scenario families, a calibrated paper profile, and a
//! recorded trace replay.

use ccd_common::rng::{Rng64, SplitMix64};
use ccd_service::{DirectoryService, LoadSpec, ServiceConfig, ServiceReport};
use ccd_workloads::{record_trace, WorkloadSpec};

const CORES: usize = 8;
const REQUESTS: u64 = 20_000;

fn build(spec: &str, shards: usize, workers: usize) -> DirectoryService {
    DirectoryService::build_standard(ServiceConfig::new(spec, shards, workers))
        .expect("test topology builds")
}

fn assert_matches_serial(spec: &str, shards: usize, workers: usize, load: &LoadSpec) {
    let serial = build(spec, shards, 1)
        .run_load_serial(load)
        .expect("serial reference runs");
    let report = build(spec, shards, workers)
        .run_load(load)
        .expect("service runs");
    assert_eq!(report.requests, REQUESTS);
    assert_eq!(
        report.semantics(),
        serial.semantics(),
        "{} x {shards} shards x {workers} workers must be bit-identical to serial",
        load.workload.label()
    );
    assert_outcome_log_is_dense(&serial);
}

fn assert_outcome_log_is_dense(report: &ServiceReport) {
    assert_eq!(report.outcomes.len() as u64, report.requests);
    for (i, record) in report.outcomes.iter().enumerate() {
        assert_eq!(record.seq, i as u64, "log is sequence-ordered and dense");
        assert!((record.shard as usize) < report.shards);
    }
}

/// Two scenario families and a paper profile, across the topology grid and
/// two shard organizations (a set-associative baseline and the cuckoo
/// directory, whose displacement chains make outcome identity a much
/// stronger statement).
#[test]
fn every_topology_matches_serial_application() {
    let workloads = ["readmostly", "prodcons", "migratory-zipf0.9", "oracle"];
    for (index, workload) in workloads.iter().enumerate() {
        let load = LoadSpec::parse(workload, CORES, 0xD0_0D + index as u64, REQUESTS)
            .expect("catalog workload parses");
        for spec in ["sparse-4x256-c8", "cuckoo-4x128-c8"] {
            for shards in [2usize, 8] {
                for workers in [1usize, 2, shards] {
                    assert_matches_serial(spec, shards, workers, &load);
                }
            }
        }
    }
}

/// A recorded trace replayed as service traffic is subject to the same
/// contract — and, replayed twice, produces the same report bytes.
#[test]
fn trace_replay_traffic_matches_serial_application() {
    let dir = std::env::temp_dir().join("ccd-service-determinism");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("replay-{}.ccdt", std::process::id()));

    let recorded: WorkloadSpec = "falseshare".parse().unwrap();
    let stream = recorded.stream(CORES, 99).unwrap();
    let written = record_trace(&path, CORES as u32, stream, REQUESTS).unwrap();
    assert_eq!(written, REQUESTS);

    let load = LoadSpec {
        workload: WorkloadSpec::replay(path.to_str().unwrap()),
        cores: CORES,
        seed: 0, // ignored by replays
        requests: REQUESTS,
    };
    for workers in [1usize, 2, 4] {
        assert_matches_serial("cuckoo-4x128-c8", 4, workers, &load);
    }

    // Replay is also reproducible wholesale: same file, same report.
    let once = build("cuckoo-4x128-c8", 4, 2).run_load(&load).unwrap();
    let twice = build("cuckoo-4x128-c8", 4, 2).run_load(&load).unwrap();
    assert_eq!(once, twice);
    std::fs::remove_file(&path).ok();
}

/// Randomized topologies (seeded, reproducible): any (shards, workers,
/// queue depth, batch size) the config accepts obeys the contract.
#[test]
fn randomized_topologies_obey_the_contract() {
    let mut rng = SplitMix64::new(0x0CCD_5EED);
    let load = LoadSpec::parse("stream-b1024", CORES, 7, REQUESTS).unwrap();
    let serial = build("sparse-4x256-c8", 4, 1)
        .run_load_serial(&load)
        .expect("serial reference runs");
    for _ in 0..6 {
        let workers = 1 + (rng.next_u64() % 4) as usize;
        let queue_depth = 1 + (rng.next_u64() % 8) as usize;
        let batch = 1 + (rng.next_u64() % 500) as usize;
        let config = ServiceConfig::new("sparse-4x256-c8", 4, workers)
            .with_queue_depth(queue_depth)
            .with_batch(batch);
        let report = DirectoryService::build_standard(config)
            .expect("topology builds")
            .run_load(&load)
            .expect("service runs");
        assert_eq!(
            report.semantics(),
            serial.semantics(),
            "workers={workers} queue={queue_depth} batch={batch}"
        );
    }
}
