//! The **fault-recovery** determinism contract: a service run under a
//! recoverable [`FaultPlan`] — scheduled worker crashes, batch stalls,
//! admission-control shedding — must produce a report whose
//! [`recovery_semantics`](ccd_service::ServiceReport::recovery_semantics)
//! (outcome log, digest, statistics, entries; everything except the `shed`
//! and `recoveries` counters that describe the failure handling itself) is
//! **byte-identical to the fault-free serial reference**.  Unrecoverable
//! plans must surface [`ServiceError::WorkerCrashed`] as a value — no hang,
//! no process abort.

use ccd_common::rng::{Rng64, SplitMix64};
use ccd_service::{DirectoryService, FaultPlan, LoadSpec, ServiceConfig, ServiceError};

const CORES: usize = 8;
const REQUESTS: u64 = 20_000;
const SPEC: &str = "cuckoo-4x128-c8";
const SHARDS: usize = 4;

fn load(workload: &str, seed: u64) -> LoadSpec {
    LoadSpec::parse(workload, CORES, seed, REQUESTS).expect("catalog workload parses")
}

fn config(workers: usize) -> ServiceConfig {
    // A small batch maximizes deliveries (more journal entries, more shed
    // draws, more crash-detection windows) without slowing the test much.
    ServiceConfig::new(SPEC, SHARDS, workers).with_batch(64)
}

fn serial_reference(load: &LoadSpec) -> ccd_service::ServiceReport {
    DirectoryService::build_standard(config(1))
        .expect("topology builds")
        .run_load_serial(load)
        .expect("serial reference runs")
}

fn run_faulty(workers: usize, plan: &str, load: &LoadSpec) -> ccd_service::ServiceReport {
    DirectoryService::build_standard(
        config(workers)
            .with_fault_spec(plan)
            .expect("fault plan parses"),
    )
    .expect("topology builds")
    .run_load(load)
    .unwrap_or_else(|err| panic!("recoverable plan `{plan}` must recover: {err}"))
}

/// Randomized recoverable plans (seeded, reproducible) across the
/// (fault kind × worker count × scenario family) grid.  Every run must
/// match the fault-free serial reference on `recovery_semantics()`, and —
/// run twice — must reproduce its entire report bit-for-bit, *including*
/// the `shed` and `recoveries` counters.
#[test]
fn randomized_recoverable_plans_match_the_fault_free_reference() {
    let mut rng = SplitMix64::new(0xFA17_5EED);
    for workload in ["prodcons", "migratory-zipf0.9"] {
        let load = load(workload, 0xBEEF);
        let serial = serial_reference(&load);
        for workers in [1usize, 2, 4] {
            for _ in 0..2 {
                let seed = rng.next_u64() % 1_000;
                let crash_worker = (rng.next_u64() % workers as u64) as usize;
                let crash_seq = rng.next_u64() % REQUESTS;
                let stall_worker = (rng.next_u64() % workers as u64) as usize;
                let shed_bp = 1 + rng.next_u64() % 200; // 0.0001..0.02
                let plan = format!(
                    "faults-seed{seed}-crash@w{crash_worker}:{crash_seq}\
                     -stall@w{stall_worker}:1ms-shed0.{shed_bp:04}"
                );
                let once = run_faulty(workers, &plan, &load);
                assert_eq!(
                    once.recovery_semantics(),
                    serial.recovery_semantics(),
                    "{workload} x {workers} workers x `{plan}`"
                );
                let twice = run_faulty(workers, &plan, &load);
                assert_eq!(
                    once, twice,
                    "faulty runs must be reproducible wholesale: `{plan}`"
                );
            }
        }
    }
}

/// The degenerate trigger: a crash armed at sequence 0 kills the worker
/// before it applies anything at all.  Recovery must rebuild from an empty
/// journal (or the first delivered batch) and still match the reference.
#[test]
fn a_crash_at_sequence_zero_recovers_from_nothing() {
    let load = load("prodcons", 11);
    let serial = serial_reference(&load);
    for workers in [1usize, 2] {
        let report = run_faulty(workers, "faults-crash@w0:0", &load);
        assert_eq!(report.recovery_semantics(), serial.recovery_semantics());
        assert_eq!(
            report.stats.recoveries.get(),
            1,
            "the seq-0 crash fires exactly once at {workers} workers"
        );
    }
}

/// Two crash points on the same worker: the first fires live, the second
/// fires either live (after the respawn) or *during replay* — both paths
/// must land on the same report, with exactly two recoveries.
#[test]
fn a_double_crash_on_one_worker_recovers_twice() {
    let load = load("migratory-zipf0.9", 23);
    let serial = serial_reference(&load);
    let report = run_faulty(2, "faults-crash@w1:3000-crash@w1:9000", &load);
    assert_eq!(report.recovery_semantics(), serial.recovery_semantics());
    assert_eq!(report.stats.recoveries.get(), 2);

    // Crashing both workers works too, and the counters stay exact.
    let report = run_faulty(2, "faults-crash@w0:5000-crash@w1:10000", &load);
    assert_eq!(report.recovery_semantics(), serial.recovery_semantics());
    assert_eq!(report.stats.recoveries.get(), 2);
}

/// Stalls and shedding perturb scheduling and the `shed` counter, never
/// results — and with no crash clause, `recoveries` stays zero.
#[test]
fn stalls_and_shedding_change_only_the_fault_counters() {
    let load = load("prodcons", 31);
    let serial = serial_reference(&load);
    let report = run_faulty(2, "faults-seed3-stall@w0:1ms-shed0.05", &load);
    assert_eq!(report.recovery_semantics(), serial.recovery_semantics());
    assert_eq!(report.stats.recoveries.get(), 0);
    // 20k requests at batch 64 is ~300 offers at 5% shed: statistically
    // certain to shed at least once, and deterministic per seed besides.
    assert!(
        report.stats.shed.get() > 0,
        "a 5% gate over ~300 offers must shed"
    );
    let again = run_faulty(2, "faults-seed3-stall@w0:1ms-shed0.05", &load);
    assert_eq!(report.stats.shed.get(), again.stats.shed.get());
}

/// An `abort@` clause is a scheduled **unrecoverable** crash: the run must
/// return [`ServiceError::WorkerCrashed`] naming the worker — promptly, as
/// a value, with the remaining workers shut down rather than left draining
/// a doomed stream.
#[test]
fn an_unrecoverable_abort_surfaces_worker_crashed() {
    let load = load("prodcons", 47);
    let err = DirectoryService::build_standard(
        config(4)
            .with_fault_spec("faults-abort@w2:5000")
            .expect("fault plan parses"),
    )
    .expect("topology builds")
    .run_load(&load)
    .expect_err("an abort@ plan must fail the run");
    match err {
        ServiceError::WorkerCrashed { worker, ref cause } => {
            assert_eq!(worker, 2);
            assert!(cause.contains("unrecoverable"), "cause: {cause}");
        }
        other => panic!("expected WorkerCrashed, got {other:?}"),
    }
}

/// A plan whose crash trigger lies beyond the end of the stream never
/// fires: the run completes fault-free with zero recoveries (the journal
/// was kept and simply discarded).
#[test]
fn a_crash_beyond_the_stream_never_fires() {
    let load = load("prodcons", 53);
    let serial = serial_reference(&load);
    let report = run_faulty(2, "faults-crash@w1:999999999", &load);
    assert_eq!(report.recovery_semantics(), serial.recovery_semantics());
    assert_eq!(report.stats.recoveries.get(), 0);
}

/// Fault plans ride the ordinary config validation: naming a worker the
/// topology does not have is rejected before any thread spawns.
#[test]
fn plans_validate_against_the_topology() {
    let err = DirectoryService::build_standard(
        config(2)
            .with_fault_spec("faults-crash@w2:100")
            .expect("grammar is fine"),
    )
    .expect_err("worker 2 does not exist at 2 workers");
    assert!(err.to_string().contains("worker index"), "{err}");
    // And the parsed plan round-trips through its canonical label.
    let plan: FaultPlan = "faults-seed9-shed0.01-crash@w1:5"
        .parse()
        .expect("grammar parses");
    assert_eq!(plan.label(), "faults-seed9-crash@w1:5-shed0.01");
}
