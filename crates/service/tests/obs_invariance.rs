//! Contract #11: **observation does not perturb semantics.**
//!
//! Two halves, both enforced here:
//!
//! * **Armed ≡ unarmed** — a run with the observability layer fully armed
//!   (metrics + flight recorder + spans), under an active fault plan *and*
//!   an active resize policy, is digest-identical to the same run dark.
//! * **Merged metrics are worker-count invariant** — the merged metric
//!   snapshot (and its byte-level JSON / Prometheus renderings) is
//!   identical for the serial reference and every worker count, because
//!   counters come from merged stats and depth distributions merge in
//!   global shard order.
//!
//! Flight recordings are explicitly *not* worker-count invariant (they
//! narrate scheduling); what they must be is run-to-run bit-reproducible
//! for a fixed topology whenever scheduling is deterministic — shed
//! gates, stalls and resize policies qualify; crash *detection* is a
//! thread race, so crash narration is asserted by presence and by its
//! deterministic virtual-time stamps instead of by ring digest.

use ccd_obs::expo::{render_json, render_prometheus};
use ccd_obs::EventKind;
use ccd_service::{DirectoryService, LoadSpec, ServiceConfig, ServiceReport};

const SPEC: &str = "cuckoo-4x256-c8";
const SHARDS: usize = 4;
const CORES: usize = 8;
const REQUESTS: u64 = 30_000;
const OBS: &str = "obs-ring4096-spans";
const FAULTS: &str = "faults-seed7-crash@w0:9000-shed0.002";
const RESIZE: &str = "resize-grow2@55-every128-max2";

fn load() -> LoadSpec {
    LoadSpec::parse("migratory-zipf0.9", CORES, 0x0B5, REQUESTS).expect("workload parses")
}

fn config(workers: usize) -> ServiceConfig {
    ServiceConfig::new(SPEC, SHARDS, workers).with_batch(64)
}

fn run(config: ServiceConfig) -> ServiceReport {
    DirectoryService::build_standard(config)
        .expect("topology builds")
        .run_load(&load())
        .expect("run completes")
}

fn run_serial(config: ServiceConfig) -> ServiceReport {
    DirectoryService::build_standard(config)
        .expect("topology builds")
        .run_load_serial(&load())
        .expect("serial run completes")
}

/// The headline assertion: with a crash to recover, shedding to ride out
/// and resizes firing mid-stream, arming the full observability layer
/// changes nothing the semantics views can see — same outcome digest,
/// same statistics, same entries.
#[test]
fn armed_and_unarmed_runs_are_digest_identical_under_faults_and_resize() {
    for workers in [1usize, 2, 4] {
        let chaotic = |cfg: ServiceConfig| {
            cfg.with_fault_spec(FAULTS)
                .expect("fault plan parses")
                .with_resize_spec(RESIZE)
                .expect("resize policy parses")
        };
        let dark = run(chaotic(config(workers)));
        let armed = run(chaotic(config(workers))
            .with_obs_spec(OBS)
            .expect("obs spec parses"));
        assert!(dark.obs.is_none(), "no obs config, no obs report");
        assert_eq!(
            armed.semantics(),
            dark.semantics(),
            "arming observation must not perturb a {workers}-worker run"
        );
        assert_eq!(armed.outcome_digest, dark.outcome_digest);

        let obs = armed.obs.as_ref().expect("armed run reports observations");
        assert_eq!(obs.label, "obs-sig2-ring4096-spans");
        assert_eq!(obs.workers.len(), workers);
        assert!(
            obs.metrics.histograms.iter().any(|h| h.count > 0),
            "depth distributions must have recorded"
        );
        // The crash narrated: a crash event stamped with the sequence it
        // actually fired at — the first of worker 0's requests at or past
        // the trigger (detection is racy; the stamp is not) — its
        // recovery, and the journal replay that rebuilt the worker.
        let router = obs.router.as_ref().expect("concurrent runs have a router");
        let stamped = |kind: EventKind| {
            router
                .events
                .iter()
                .filter(move |e| e.kind() == Some(kind))
                .collect::<Vec<_>>()
        };
        let crashes = stamped(EventKind::Crash);
        assert!(!crashes.is_empty(), "injected crash must be narrated");
        assert!(crashes.iter().all(|e| e.lane() == 0 && e.vtime() >= 9_000));
        assert!(!stamped(EventKind::Recovery).is_empty());
        assert!(!stamped(EventKind::JournalReplay).is_empty());
        // Resizes fired (guard against a policy that never triggers) and
        // were narrated worker-side, where `maybe_resize` records them.
        assert!(armed.stats.resizes.get() > 0);
        assert!(obs
            .workers
            .iter()
            .flat_map(|r| r.events.iter())
            .any(|e| e.kind() == Some(EventKind::ResizeFired)));
    }
}

/// The merged metric snapshot — and therefore its JSON and Prometheus
/// renderings — is byte-identical across the serial reference and every
/// worker count.
#[test]
fn merged_metric_snapshots_are_byte_identical_across_worker_counts() {
    let armed = |workers| config(workers).with_obs_spec(OBS).expect("obs spec parses");
    let serial = run_serial(armed(1));
    let reference = serial.obs.as_ref().expect("serial obs report");
    let reference_json = render_json(&reference.metrics);
    let reference_prom = render_prometheus(&reference.metrics, "ccd");
    assert!(reference.router.is_none(), "serial runs have no router");
    for workers in [1usize, 2, 4] {
        let report = run(armed(workers));
        let obs = report.obs.as_ref().expect("concurrent obs report");
        assert_eq!(obs.metrics, reference.metrics, "{workers} workers");
        assert_eq!(render_json(&obs.metrics), reference_json);
        assert_eq!(render_prometheus(&obs.metrics, "ccd"), reference_prom);
    }
}

/// Flight recordings narrate scheduling, so they are required to be
/// run-to-run bit-reproducible for a fixed topology whenever scheduling
/// is deterministic: shed gates draw on the single router thread in offer
/// order, stalls are pure latency, and resize epochs are a function of
/// each shard's request subsequence.
#[test]
fn flight_recordings_are_bit_reproducible_for_a_fixed_topology() {
    let build = || {
        config(2)
            .with_fault_spec("faults-seed7-stall@w1:1ms-shed0.01")
            .expect("fault plan parses")
            .with_resize_spec(RESIZE)
            .expect("resize policy parses")
            .with_obs_spec(OBS)
            .expect("obs spec parses")
    };
    let once = run(build());
    let twice = run(build());
    let (a, b) = (once.obs.unwrap(), twice.obs.unwrap());
    assert_eq!(
        a.router.as_ref().map(|r| r.digest()),
        b.router.as_ref().map(|r| r.digest())
    );
    let digests =
        |obs: &ccd_service::ObsReport| obs.workers.iter().map(|r| r.digest()).collect::<Vec<_>>();
    assert_eq!(digests(&a), digests(&b));
    // The recorders actually saw traffic: every worker applied batches,
    // and the router both routed and shed.
    assert!(a.workers.iter().all(|r| r.recorded > 0));
    let router = a.router.expect("router recording");
    let saw = |kind: EventKind| router.events.iter().any(|e| e.kind() == Some(kind));
    assert!(saw(EventKind::BatchRouted));
    assert!(saw(EventKind::Shed));
}
