//! Limited-pointer sharer representation.
//!
//! Stores up to a small fixed number of exact cache pointers per entry
//! (Agarwal et al.'s Dir_i schemes, cited as \[3\] in the paper).  When more
//! caches than pointers share a block the entry *overflows* and the
//! representation becomes conservative: every cache is considered a
//! potential sharer until the entry is cleared (the classic
//! broadcast-on-overflow, Dir_i-B, policy).

use crate::SharerSet;
use ccd_common::{ceil_log2, CacheId};

/// Default number of exact pointers stored per entry.
pub const DEFAULT_POINTERS: usize = 4;

/// Per-entry storage bits for `pointers` pointers over `num_caches` caches:
/// the pointers themselves plus one overflow bit.
#[must_use]
pub fn entry_bits(num_caches: usize, pointers: usize) -> u64 {
    pointers as u64 * u64::from(ceil_log2(num_caches as u64).max(1)) + 1
}

/// Per-entry storage bits with the default pointer count.
#[must_use]
pub fn default_entry_bits(num_caches: usize) -> u64 {
    entry_bits(num_caches, DEFAULT_POINTERS)
}

/// A limited-pointer sharer set with broadcast-on-overflow semantics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LimitedPointer {
    pointers: Vec<CacheId>,
    capacity: usize,
    overflowed: bool,
    num_caches: usize,
}

impl LimitedPointer {
    /// Creates an empty set with an explicit pointer budget.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `num_caches` is zero.
    #[must_use]
    pub fn with_capacity(num_caches: usize, capacity: usize) -> Self {
        assert!(num_caches > 0, "need at least one cache");
        assert!(capacity > 0, "need at least one pointer");
        LimitedPointer {
            pointers: Vec::with_capacity(capacity),
            capacity,
            overflowed: false,
            num_caches,
        }
    }

    /// Returns `true` once the entry has overflowed into broadcast mode.
    #[must_use]
    pub fn has_overflowed(&self) -> bool {
        self.overflowed
    }

    /// The pointer budget of this entry.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn assert_in_range(&self, cache: CacheId) {
        assert!(
            cache.index() < self.num_caches,
            "{cache} out of range for {} caches",
            self.num_caches
        );
    }
}

impl SharerSet for LimitedPointer {
    fn new(num_caches: usize) -> Self {
        Self::with_capacity(num_caches, DEFAULT_POINTERS)
    }

    fn num_caches(&self) -> usize {
        self.num_caches
    }

    fn add(&mut self, cache: CacheId) {
        self.assert_in_range(cache);
        if self.overflowed || self.pointers.contains(&cache) {
            return;
        }
        if self.pointers.len() < self.capacity {
            self.pointers.push(cache);
        } else {
            // Broadcast-on-overflow: drop the exact list, remember only that
            // "anyone may share".
            self.pointers.clear();
            self.overflowed = true;
        }
    }

    fn remove(&mut self, cache: CacheId) {
        self.assert_in_range(cache);
        if self.overflowed {
            // Cannot express a precise removal; stay conservative.
            return;
        }
        self.pointers.retain(|&p| p != cache);
    }

    fn may_contain(&self, cache: CacheId) -> bool {
        if cache.index() >= self.num_caches {
            return false;
        }
        self.overflowed || self.pointers.contains(&cache)
    }

    fn is_empty(&self) -> bool {
        !self.overflowed && self.pointers.is_empty()
    }

    fn invalidation_targets(&self) -> Vec<CacheId> {
        let mut targets = Vec::new();
        self.extend_targets(&mut targets);
        targets
    }

    fn extend_targets(&self, out: &mut Vec<CacheId>) {
        if self.overflowed {
            out.extend((0..self.num_caches as u32).map(CacheId::new));
        } else {
            let start = out.len();
            out.extend_from_slice(&self.pointers);
            out[start..].sort_unstable();
        }
    }

    fn is_exact(&self) -> bool {
        !self.overflowed
    }

    fn exact_count(&self) -> Option<usize> {
        (!self.overflowed).then_some(self.pointers.len())
    }

    fn clear(&mut self) {
        self.pointers.clear();
        self.overflowed = false;
    }

    fn storage_bits(&self) -> u64 {
        entry_bits(self.num_caches, self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_until_overflow() {
        let mut s = LimitedPointer::with_capacity(64, 2);
        s.add(CacheId::new(5));
        s.add(CacheId::new(9));
        assert!(s.is_exact());
        assert_eq!(s.exact_count(), Some(2));
        assert_eq!(
            s.invalidation_targets(),
            vec![CacheId::new(5), CacheId::new(9)]
        );

        // Third sharer overflows into broadcast.
        s.add(CacheId::new(40));
        assert!(s.has_overflowed());
        assert!(!s.is_exact());
        assert_eq!(s.exact_count(), None);
        assert_eq!(s.invalidation_targets().len(), 64);
        assert!(s.may_contain(CacheId::new(0)));
        assert!(!s.is_empty());
    }

    #[test]
    fn duplicate_adds_do_not_overflow() {
        let mut s = LimitedPointer::with_capacity(16, 2);
        s.add(CacheId::new(1));
        s.add(CacheId::new(1));
        s.add(CacheId::new(1));
        assert!(s.is_exact());
        assert_eq!(s.exact_count(), Some(1));
    }

    #[test]
    fn remove_is_conservative_after_overflow() {
        let mut s = LimitedPointer::with_capacity(8, 1);
        s.add(CacheId::new(0));
        s.add(CacheId::new(1)); // overflow
        s.remove(CacheId::new(0));
        assert!(
            s.may_contain(CacheId::new(0)),
            "conservative after overflow"
        );
        s.clear();
        assert!(s.is_empty());
        assert!(s.is_exact());
    }

    #[test]
    fn remove_before_overflow_is_exact() {
        let mut s = LimitedPointer::new(32);
        s.add(CacheId::new(7));
        s.add(CacheId::new(8));
        s.remove(CacheId::new(7));
        assert!(!s.may_contain(CacheId::new(7)));
        assert_eq!(s.exact_count(), Some(1));
    }

    #[test]
    fn storage_bits_formula() {
        // 4 pointers * log2(256)=8 bits + 1 overflow bit.
        let s = LimitedPointer::new(256);
        assert_eq!(s.storage_bits(), 4 * 8 + 1);
        let s = LimitedPointer::with_capacity(1024, 2);
        assert_eq!(s.storage_bits(), 2 * 10 + 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_add_panics() {
        let mut s = LimitedPointer::new(4);
        s.add(CacheId::new(4));
    }
}
