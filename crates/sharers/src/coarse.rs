//! Coarse sharer vector with an exact-pointer fast path.
//!
//! The paper's *Sparse Coarse* / *Cuckoo Coarse* entries (Section 3.3,
//! Figures 4 and 13) "precisely store sharers in the available bits
//! (2·log₂(#caches) bits) and fall back to a coarse vector representation in
//! the case of overflow", following Gupta et al. and the SGI Origin.
//!
//! Concretely, an entry owns `2·log₂(N)` sharer bits plus one mode bit:
//!
//! * **pointer mode** — up to two exact cache pointers of `log₂(N)` bits
//!   each;
//! * **coarse mode** — the same bits reinterpreted as a region bit vector in
//!   which each bit stands for a contiguous group of
//!   `⌈N / (2·log₂ N)⌉` caches.  Invalidations go to every cache of every
//!   marked region, i.e. the representation becomes a conservative
//!   superset.

use crate::SharerSet;
use ccd_common::{ceil_log2, CacheId};

/// Per-entry sharer storage bits: `2·log₂(N)` sharer bits plus a mode bit.
#[must_use]
pub fn entry_bits(num_caches: usize) -> u64 {
    2 * u64::from(ceil_log2(num_caches as u64).max(1)) + 1
}

/// Number of region bits available in coarse mode.
#[must_use]
pub fn region_count(num_caches: usize) -> usize {
    (2 * ceil_log2(num_caches as u64).max(1) as usize).min(num_caches)
}

/// Number of caches covered by each region bit.
#[must_use]
pub fn caches_per_region(num_caches: usize) -> usize {
    num_caches.div_ceil(region_count(num_caches))
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Mode {
    /// Up to two exact pointers.
    Pointers(Vec<CacheId>),
    /// Region bit mask (bit `r` covers caches `r*g .. (r+1)*g`).
    Coarse(u64),
}

/// A coarse sharer vector with a two-pointer exact fast path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoarseVector {
    mode: Mode,
    num_caches: usize,
}

impl CoarseVector {
    /// Maximum number of exact pointers held before falling back to the
    /// coarse representation.
    pub const MAX_POINTERS: usize = 2;

    /// Returns `true` when the entry has fallen back to the coarse
    /// region-vector representation.
    #[must_use]
    pub fn is_coarse(&self) -> bool {
        matches!(self.mode, Mode::Coarse(_))
    }

    fn region_of(&self, cache: CacheId) -> usize {
        cache.index() / caches_per_region(self.num_caches)
    }

    fn caches_in_region(&self, region: usize) -> impl Iterator<Item = CacheId> {
        let g = caches_per_region(self.num_caches);
        let start = region * g;
        let end = ((region + 1) * g).min(self.num_caches);
        (start..end).map(|i| CacheId::new(i as u32))
    }

    fn assert_in_range(&self, cache: CacheId) {
        assert!(
            cache.index() < self.num_caches,
            "{cache} out of range for {} caches",
            self.num_caches
        );
    }
}

impl SharerSet for CoarseVector {
    fn new(num_caches: usize) -> Self {
        assert!(num_caches > 0, "need at least one cache");
        assert!(
            region_count(num_caches) <= 64,
            "coarse vector supports at most 64 regions ({num_caches} caches would need more)"
        );
        CoarseVector {
            mode: Mode::Pointers(Vec::with_capacity(Self::MAX_POINTERS)),
            num_caches,
        }
    }

    fn num_caches(&self) -> usize {
        self.num_caches
    }

    fn add(&mut self, cache: CacheId) {
        self.assert_in_range(cache);
        match &mut self.mode {
            Mode::Pointers(ptrs) => {
                if ptrs.contains(&cache) {
                    return;
                }
                if ptrs.len() < Self::MAX_POINTERS {
                    ptrs.push(cache);
                } else {
                    // Overflow: reinterpret as a region vector covering the
                    // existing pointers plus the new sharer.
                    let mut mask = 0u64;
                    let existing: Vec<CacheId> = ptrs.clone();
                    for c in existing.into_iter().chain(std::iter::once(cache)) {
                        mask |= 1 << self.region_of(c);
                    }
                    self.mode = Mode::Coarse(mask);
                }
            }
            Mode::Coarse(mask) => {
                let region = cache.index() / caches_per_region(self.num_caches);
                *mask |= 1 << region;
            }
        }
    }

    fn remove(&mut self, cache: CacheId) {
        self.assert_in_range(cache);
        match &mut self.mode {
            Mode::Pointers(ptrs) => ptrs.retain(|&p| p != cache),
            // A coarse region bit may cover other live sharers, so removal
            // must stay conservative.
            Mode::Coarse(_) => {}
        }
    }

    fn may_contain(&self, cache: CacheId) -> bool {
        if cache.index() >= self.num_caches {
            return false;
        }
        match &self.mode {
            Mode::Pointers(ptrs) => ptrs.contains(&cache),
            Mode::Coarse(mask) => mask & (1 << self.region_of(cache)) != 0,
        }
    }

    fn is_empty(&self) -> bool {
        match &self.mode {
            Mode::Pointers(ptrs) => ptrs.is_empty(),
            Mode::Coarse(mask) => *mask == 0,
        }
    }

    fn invalidation_targets(&self) -> Vec<CacheId> {
        let mut targets = Vec::new();
        self.extend_targets(&mut targets);
        targets
    }

    fn extend_targets(&self, out: &mut Vec<CacheId>) {
        match &self.mode {
            Mode::Pointers(ptrs) => {
                let start = out.len();
                out.extend_from_slice(ptrs);
                out[start..].sort_unstable();
            }
            Mode::Coarse(mask) => {
                for region in 0..region_count(self.num_caches) {
                    if mask & (1 << region) != 0 {
                        out.extend(self.caches_in_region(region));
                    }
                }
            }
        }
    }

    fn is_exact(&self) -> bool {
        match &self.mode {
            Mode::Pointers(_) => true,
            // A region covering a single cache is still exact.
            Mode::Coarse(_) => caches_per_region(self.num_caches) == 1,
        }
    }

    fn exact_count(&self) -> Option<usize> {
        match &self.mode {
            Mode::Pointers(ptrs) => Some(ptrs.len()),
            Mode::Coarse(mask) => {
                (caches_per_region(self.num_caches) == 1).then(|| mask.count_ones() as usize)
            }
        }
    }

    fn clear(&mut self) {
        self.mode = Mode::Pointers(Vec::with_capacity(Self::MAX_POINTERS));
    }

    fn storage_bits(&self) -> u64 {
        entry_bits(self.num_caches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointer_mode_is_exact() {
        let mut s = CoarseVector::new(64);
        s.add(CacheId::new(10));
        s.add(CacheId::new(50));
        assert!(!s.is_coarse());
        assert!(s.is_exact());
        assert_eq!(s.exact_count(), Some(2));
        assert_eq!(
            s.invalidation_targets(),
            vec![CacheId::new(10), CacheId::new(50)]
        );
        s.remove(CacheId::new(10));
        assert!(!s.may_contain(CacheId::new(10)));
        assert_eq!(s.exact_count(), Some(1));
    }

    #[test]
    fn overflow_switches_to_coarse_superset() {
        let mut s = CoarseVector::new(64);
        let sharers = [CacheId::new(1), CacheId::new(20), CacheId::new(40)];
        for &c in &sharers {
            s.add(c);
        }
        assert!(s.is_coarse());
        assert!(!s.is_exact());
        let targets = s.invalidation_targets();
        // Conservative: all true sharers are covered.
        for &c in &sharers {
            assert!(targets.contains(&c), "missing true sharer {c}");
            assert!(s.may_contain(c));
        }
        // Each target's region must contain at least one true sharer region.
        assert!(targets.len() >= sharers.len());
    }

    #[test]
    fn coarse_removal_is_conservative() {
        let mut s = CoarseVector::new(32);
        for i in 0..3u32 {
            s.add(CacheId::new(i * 10));
        }
        assert!(s.is_coarse());
        s.remove(CacheId::new(0));
        assert!(
            s.may_contain(CacheId::new(0)),
            "coarse removal stays conservative"
        );
        assert!(!s.is_empty());
    }

    #[test]
    fn clear_returns_to_pointer_mode() {
        let mut s = CoarseVector::new(32);
        for i in 0..5u32 {
            s.add(CacheId::new(i));
        }
        assert!(s.is_coarse());
        s.clear();
        assert!(!s.is_coarse());
        assert!(s.is_empty());
        assert!(s.is_exact());
    }

    #[test]
    fn tiny_systems_stay_exact_even_in_coarse_mode() {
        // With 4 caches the region count (2*log2(4)=4) covers one cache per
        // region, so even the coarse fallback is exact.
        let mut s = CoarseVector::new(4);
        for i in 0..4u32 {
            s.add(CacheId::new(i));
        }
        assert!(s.is_exact());
        assert_eq!(s.exact_count(), Some(4));
        assert_eq!(s.invalidation_targets().len(), 4);
    }

    #[test]
    fn storage_bits_follow_the_paper_formula() {
        assert_eq!(entry_bits(16), 2 * 4 + 1);
        assert_eq!(entry_bits(1024), 2 * 10 + 1);
        assert_eq!(entry_bits(2), 2 + 1);
        let s = CoarseVector::new(256);
        assert_eq!(s.storage_bits(), 2 * 8 + 1);
    }

    #[test]
    fn region_geometry_is_consistent() {
        for n in [2usize, 4, 16, 32, 64, 100, 256, 1024, 2048] {
            let regions = region_count(n);
            let per = caches_per_region(n);
            assert!(
                regions * per >= n,
                "regions must cover all caches for n={n}"
            );
            assert!(regions <= 64);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_add_panics() {
        let mut s = CoarseVector::new(8);
        s.add(CacheId::new(9));
    }
}
