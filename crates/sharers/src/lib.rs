//! Sharer-set representations for coherence-directory entries.
//!
//! Every directory entry tracks *which private caches hold a copy* of the
//! entry's block.  The paper deliberately decouples this per-entry sharer
//! representation from the organization of the directory itself
//! (Section 6: "The Cuckoo organization dictates only the organization of
//! the directory itself, not the contents of each entry"), and evaluates the
//! Cuckoo tag organization combined with both the *coarse* and the
//! *hierarchical* sharer formats (Figure 13).
//!
//! This crate provides the four representations used across the evaluation:
//!
//! * [`FullBitVector`] — one presence bit per cache (the traditional Sparse
//!   format whose area grows linearly with core count),
//! * [`LimitedPointer`] — a handful of exact cache pointers with a
//!   broadcast-on-overflow fallback,
//! * [`CoarseVector`] — exact pointers within `2·log₂(caches)` bits,
//!   falling back to a coarse-grained region vector on overflow
//!   (the Sparse/Cuckoo *Coarse* format, after Gupta et al. and the SGI
//!   Origin),
//! * [`HierarchicalVector`] — a two-level bit vector (root groups plus
//!   on-demand leaf vectors), the Sparse/Cuckoo *Hierarchical* format.
//!
//! All representations implement [`SharerSet`], which exposes both the
//! semantic operations (add/remove/invalidation targets) and the storage
//! accounting the energy/area model needs.
//!
//! # Conservativeness
//!
//! Compressed formats may *over*-approximate the sharer set (they return a
//! superset of the true sharers, never a subset), because invalidating a
//! non-sharer is merely wasteful while missing a sharer breaks coherence.
//! [`SharerSet::is_exact`] reports whether the current contents are precise.
//!
//! # Example
//!
//! ```
//! use ccd_common::CacheId;
//! use ccd_sharers::{CoarseVector, SharerSet};
//!
//! let mut sharers = CoarseVector::new(32);
//! sharers.add(CacheId::new(3));
//! sharers.add(CacheId::new(17));
//! assert!(sharers.is_exact());
//! assert_eq!(sharers.invalidation_targets(), vec![CacheId::new(3), CacheId::new(17)]);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod coarse;
pub mod full;
pub mod hierarchical;
pub mod limited;

pub use coarse::CoarseVector;
pub use full::FullBitVector;
pub use hierarchical::HierarchicalVector;
pub use limited::LimitedPointer;

use ccd_common::CacheId;
use std::fmt::Debug;

/// A per-directory-entry sharer set.
///
/// Implementations must be conservative: [`SharerSet::may_contain`] and
/// [`SharerSet::invalidation_targets`] may over-approximate but never
/// under-approximate the set of caches that were [`SharerSet::add`]ed and
/// not since [`SharerSet::remove`]d.
pub trait SharerSet: Clone + Debug + Send {
    /// Creates an empty sharer set sized for `num_caches` private caches,
    /// using the representation's default parameters.
    fn new(num_caches: usize) -> Self;

    /// Number of private caches this set can describe.
    fn num_caches(&self) -> usize;

    /// Records that `cache` holds a copy of the block.
    ///
    /// # Panics
    ///
    /// Panics if `cache` is out of range for this set.
    fn add(&mut self, cache: CacheId);

    /// Records that `cache` no longer holds a copy of the block.
    ///
    /// Compressed representations that cannot express the removal precisely
    /// are allowed to keep `cache` in their over-approximation.
    fn remove(&mut self, cache: CacheId);

    /// Returns `true` if `cache` *may* hold a copy (exact for precise
    /// representations, conservative for compressed ones).
    fn may_contain(&self, cache: CacheId) -> bool;

    /// Returns `true` when the set is known to be empty.
    ///
    /// A conservative representation may return `false` even when no true
    /// sharers remain (e.g. a coarse vector after removals).
    fn is_empty(&self) -> bool;

    /// The caches that must receive an invalidation to guarantee no copy
    /// survives — a superset of the true sharers.
    fn invalidation_targets(&self) -> Vec<CacheId>;

    /// Appends the invalidation targets to `out` without allocating (beyond
    /// `out`'s own growth).  This is the hot-path variant of
    /// [`SharerSet::invalidation_targets`] used by the directory
    /// organizations' `apply` implementations: the caller owns and reuses
    /// the buffer, so a warmed-up buffer makes the operation allocation-free.
    ///
    /// Implementations must append exactly the elements (and order) that
    /// [`SharerSet::invalidation_targets`] would return.
    fn extend_targets(&self, out: &mut Vec<CacheId>) {
        out.extend(self.invalidation_targets());
    }

    /// `true` when the current contents are known to be an exact sharer
    /// list rather than an over-approximation.
    fn is_exact(&self) -> bool;

    /// Number of exact sharers if known, `None` when only an upper bound is
    /// representable.
    fn exact_count(&self) -> Option<usize>;

    /// Removes all sharers.
    fn clear(&mut self);

    /// Number of storage bits one directory entry needs for this
    /// representation (excluding the tag and state bits), as provisioned in
    /// hardware — i.e. the worst-case width, not the currently-occupied
    /// width.
    fn storage_bits(&self) -> u64;

    /// Number of bits a directory read or update of this entry touches.
    /// For most formats this equals [`SharerSet::storage_bits`]; the
    /// hierarchical format only touches the root plus one leaf.
    fn access_bits(&self) -> u64 {
        self.storage_bits()
    }
}

/// The sharer-vector formats evaluated in the paper, as a runtime choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum SharerFormat {
    /// One presence bit per cache.
    #[default]
    FullVector,
    /// A few exact pointers, broadcast on overflow.
    LimitedPointer,
    /// Exact pointers in `2·log₂(caches)` bits with coarse-vector fallback.
    Coarse,
    /// Two-level hierarchical bit vector.
    Hierarchical,
}

impl SharerFormat {
    /// All formats, in the order the paper discusses them.
    #[must_use]
    pub const fn all() -> [SharerFormat; 4] {
        [
            SharerFormat::FullVector,
            SharerFormat::LimitedPointer,
            SharerFormat::Coarse,
            SharerFormat::Hierarchical,
        ]
    }

    /// Worst-case per-entry sharer storage bits for `num_caches` caches.
    ///
    /// These closed forms are what the analytical area model (Figure 4 and
    /// Figure 13) uses; they match the `storage_bits()` reported by freshly
    /// constructed sets of each representation.
    #[must_use]
    pub fn entry_bits(self, num_caches: usize) -> u64 {
        match self {
            SharerFormat::FullVector => full::vector_bits(num_caches),
            SharerFormat::LimitedPointer => limited::default_entry_bits(num_caches),
            SharerFormat::Coarse => coarse::entry_bits(num_caches),
            SharerFormat::Hierarchical => hierarchical::entry_bits(num_caches),
        }
    }
}

impl std::str::FromStr for SharerFormat {
    type Err = ccd_common::ConfigError;

    /// Parses the names used in directory-spec strings: `full`/`full-vector`,
    /// `limited`/`limited-pointer`, `coarse`, `hier`/`hierarchical`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "full" | "full-vector" => Ok(SharerFormat::FullVector),
            "limited" | "limited-pointer" => Ok(SharerFormat::LimitedPointer),
            "coarse" => Ok(SharerFormat::Coarse),
            "hier" | "hierarchical" => Ok(SharerFormat::Hierarchical),
            other => Err(ccd_common::ConfigError::Parse {
                what: format!("unknown sharer format `{other}`"),
            }),
        }
    }
}

impl std::fmt::Display for SharerFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            SharerFormat::FullVector => "full-vector",
            SharerFormat::LimitedPointer => "limited-pointer",
            SharerFormat::Coarse => "coarse",
            SharerFormat::Hierarchical => "hierarchical",
        };
        f.write_str(name)
    }
}

/// A sharer set whose representation is chosen at runtime.
///
/// This is the type the coherence simulator stores in directory entries when
/// the sharer format is part of the experiment configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DynSharerSet {
    /// Full bit vector.
    Full(FullBitVector),
    /// Limited pointers.
    Limited(LimitedPointer),
    /// Coarse vector with pointer fast path.
    Coarse(CoarseVector),
    /// Two-level hierarchical vector.
    Hierarchical(HierarchicalVector),
}

impl DynSharerSet {
    /// Creates an empty set of the given `format` for `num_caches` caches.
    #[must_use]
    pub fn with_format(format: SharerFormat, num_caches: usize) -> Self {
        match format {
            SharerFormat::FullVector => DynSharerSet::Full(FullBitVector::new(num_caches)),
            SharerFormat::LimitedPointer => DynSharerSet::Limited(LimitedPointer::new(num_caches)),
            SharerFormat::Coarse => DynSharerSet::Coarse(CoarseVector::new(num_caches)),
            SharerFormat::Hierarchical => {
                DynSharerSet::Hierarchical(HierarchicalVector::new(num_caches))
            }
        }
    }

    /// Returns the format of this set.
    #[must_use]
    pub fn format(&self) -> SharerFormat {
        match self {
            DynSharerSet::Full(_) => SharerFormat::FullVector,
            DynSharerSet::Limited(_) => SharerFormat::LimitedPointer,
            DynSharerSet::Coarse(_) => SharerFormat::Coarse,
            DynSharerSet::Hierarchical(_) => SharerFormat::Hierarchical,
        }
    }
}

macro_rules! dyn_dispatch {
    ($self:ident, $inner:ident, $body:expr) => {
        match $self {
            DynSharerSet::Full($inner) => $body,
            DynSharerSet::Limited($inner) => $body,
            DynSharerSet::Coarse($inner) => $body,
            DynSharerSet::Hierarchical($inner) => $body,
        }
    };
}

impl SharerSet for DynSharerSet {
    fn new(num_caches: usize) -> Self {
        DynSharerSet::Full(FullBitVector::new(num_caches))
    }

    fn num_caches(&self) -> usize {
        dyn_dispatch!(self, s, s.num_caches())
    }

    fn add(&mut self, cache: CacheId) {
        dyn_dispatch!(self, s, s.add(cache));
    }

    fn remove(&mut self, cache: CacheId) {
        dyn_dispatch!(self, s, s.remove(cache));
    }

    fn may_contain(&self, cache: CacheId) -> bool {
        dyn_dispatch!(self, s, s.may_contain(cache))
    }

    fn is_empty(&self) -> bool {
        dyn_dispatch!(self, s, s.is_empty())
    }

    fn invalidation_targets(&self) -> Vec<CacheId> {
        dyn_dispatch!(self, s, s.invalidation_targets())
    }

    fn extend_targets(&self, out: &mut Vec<CacheId>) {
        dyn_dispatch!(self, s, s.extend_targets(out));
    }

    fn is_exact(&self) -> bool {
        dyn_dispatch!(self, s, s.is_exact())
    }

    fn exact_count(&self) -> Option<usize> {
        dyn_dispatch!(self, s, s.exact_count())
    }

    fn clear(&mut self) {
        dyn_dispatch!(self, s, s.clear());
    }

    fn storage_bits(&self) -> u64 {
        dyn_dispatch!(self, s, s.storage_bits())
    }

    fn access_bits(&self) -> u64 {
        dyn_dispatch!(self, s, s.access_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<S: SharerSet>(num_caches: usize) {
        let mut s = S::new(num_caches);
        assert!(s.is_empty());
        assert_eq!(s.num_caches(), num_caches);
        assert!(s.invalidation_targets().is_empty());

        s.add(CacheId::new(0));
        s.add(CacheId::new((num_caches - 1) as u32));
        assert!(!s.is_empty());
        assert!(s.may_contain(CacheId::new(0)));
        assert!(s.may_contain(CacheId::new((num_caches - 1) as u32)));
        let targets = s.invalidation_targets();
        assert!(targets.contains(&CacheId::new(0)));
        assert!(targets.contains(&CacheId::new((num_caches - 1) as u32)));

        s.clear();
        assert!(s.is_empty());
        assert!(s.invalidation_targets().is_empty());
    }

    #[test]
    fn every_representation_satisfies_the_basic_contract() {
        exercise::<FullBitVector>(32);
        exercise::<LimitedPointer>(32);
        exercise::<CoarseVector>(32);
        exercise::<HierarchicalVector>(32);
        exercise::<DynSharerSet>(32);
    }

    #[test]
    fn dyn_set_reports_its_format() {
        for format in SharerFormat::all() {
            let s = DynSharerSet::with_format(format, 16);
            assert_eq!(s.format(), format);
            assert_eq!(s.num_caches(), 16);
            assert_eq!(s.storage_bits(), format.entry_bits(16));
        }
    }

    #[test]
    fn entry_bits_scale_sensibly() {
        // Full vector grows linearly, coarse/hierarchical sub-linearly.
        let full_16 = SharerFormat::FullVector.entry_bits(16);
        let full_1024 = SharerFormat::FullVector.entry_bits(1024);
        assert_eq!(full_16, 16);
        assert_eq!(full_1024, 1024);

        let coarse_1024 = SharerFormat::Coarse.entry_bits(1024);
        assert!(coarse_1024 <= 2 * 10 + 2, "coarse = {coarse_1024}");

        let hier_1024 = SharerFormat::Hierarchical.entry_bits(1024);
        assert!(hier_1024 < full_1024 / 4, "hier = {hier_1024}");
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(SharerFormat::FullVector.to_string(), "full-vector");
        assert_eq!(SharerFormat::Coarse.to_string(), "coarse");
        assert_eq!(SharerFormat::Hierarchical.to_string(), "hierarchical");
        assert_eq!(SharerFormat::LimitedPointer.to_string(), "limited-pointer");
    }
}
