//! Full (uncompressed) sharer bit vectors.
//!
//! One presence bit per private cache — the representation of the
//! traditional Sparse directory (Censier–Feautrier style).  Exact and
//! trivially cheap to update, but its width grows linearly with the number
//! of caches, which is precisely the scalability problem Section 3.2 of the
//! paper describes ("at 256 cores, the aggregate vector-based L1 directory
//! could consume more than 256 MB of on-chip storage").

use crate::SharerSet;
use ccd_common::CacheId;

/// Storage width in bits of a full vector for `num_caches` caches.
#[must_use]
pub fn vector_bits(num_caches: usize) -> u64 {
    num_caches as u64
}

/// An exact, one-bit-per-cache sharer vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FullBitVector {
    words: Vec<u64>,
    num_caches: usize,
    count: usize,
}

impl FullBitVector {
    /// Number of caches currently marked as sharers.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    fn word_and_bit(cache: CacheId) -> (usize, u64) {
        (cache.index() / 64, 1u64 << (cache.index() % 64))
    }

    fn assert_in_range(&self, cache: CacheId) {
        assert!(
            cache.index() < self.num_caches,
            "{cache} out of range for a {}-cache sharer vector",
            self.num_caches
        );
    }
}

impl SharerSet for FullBitVector {
    fn new(num_caches: usize) -> Self {
        assert!(num_caches > 0, "sharer vector needs at least one cache");
        FullBitVector {
            words: vec![0; num_caches.div_ceil(64)],
            num_caches,
            count: 0,
        }
    }

    fn num_caches(&self) -> usize {
        self.num_caches
    }

    fn add(&mut self, cache: CacheId) {
        self.assert_in_range(cache);
        let (word, bit) = Self::word_and_bit(cache);
        if self.words[word] & bit == 0 {
            self.words[word] |= bit;
            self.count += 1;
        }
    }

    fn remove(&mut self, cache: CacheId) {
        self.assert_in_range(cache);
        let (word, bit) = Self::word_and_bit(cache);
        if self.words[word] & bit != 0 {
            self.words[word] &= !bit;
            self.count -= 1;
        }
    }

    fn may_contain(&self, cache: CacheId) -> bool {
        if cache.index() >= self.num_caches {
            return false;
        }
        let (word, bit) = Self::word_and_bit(cache);
        self.words[word] & bit != 0
    }

    fn is_empty(&self) -> bool {
        self.count == 0
    }

    fn invalidation_targets(&self) -> Vec<CacheId> {
        let mut targets = Vec::with_capacity(self.count);
        self.extend_targets(&mut targets);
        targets
    }

    fn extend_targets(&self, out: &mut Vec<CacheId>) {
        for (w, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push(CacheId::new((w * 64 + b) as u32));
                bits &= bits - 1;
            }
        }
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn exact_count(&self) -> Option<usize> {
        Some(self.count)
    }

    fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.count = 0;
    }

    fn storage_bits(&self) -> u64 {
        vector_bits(self.num_caches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_contains() {
        let mut v = FullBitVector::new(130);
        assert_eq!(v.storage_bits(), 130);
        for i in [0u32, 63, 64, 65, 129] {
            v.add(CacheId::new(i));
        }
        assert_eq!(v.count(), 5);
        assert_eq!(v.exact_count(), Some(5));
        assert!(v.may_contain(CacheId::new(64)));
        assert!(!v.may_contain(CacheId::new(1)));

        v.remove(CacheId::new(64));
        assert!(!v.may_contain(CacheId::new(64)));
        assert_eq!(v.count(), 4);

        // Double add / double remove are idempotent.
        v.add(CacheId::new(0));
        assert_eq!(v.count(), 4);
        v.remove(CacheId::new(64));
        assert_eq!(v.count(), 4);
    }

    #[test]
    fn invalidation_targets_are_sorted_and_exact() {
        let mut v = FullBitVector::new(200);
        let ids = [199u32, 3, 77, 128];
        for &i in &ids {
            v.add(CacheId::new(i));
        }
        let targets = v.invalidation_targets();
        assert_eq!(
            targets,
            vec![
                CacheId::new(3),
                CacheId::new(77),
                CacheId::new(128),
                CacheId::new(199)
            ]
        );
        assert!(v.is_exact());
    }

    #[test]
    fn clear_empties_everything() {
        let mut v = FullBitVector::new(16);
        for i in 0..16u32 {
            v.add(CacheId::new(i));
        }
        assert_eq!(v.count(), 16);
        v.clear();
        assert!(v.is_empty());
        assert!(v.invalidation_targets().is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_add_panics() {
        let mut v = FullBitVector::new(8);
        v.add(CacheId::new(8));
    }

    #[test]
    fn may_contain_out_of_range_is_false() {
        let v = FullBitVector::new(8);
        assert!(!v.may_contain(CacheId::new(100)));
    }
}
