//! Two-level hierarchical sharer vector.
//!
//! The paper's *Sparse Hierarchical* / *Cuckoo Hierarchical* format
//! (Section 3.3, after Wallach's PHD and Guo et al.): sharers are tracked by
//! a small *root* vector with one bit per cache *group*, plus per-group
//! *leaf* vectors allocated only for groups that actually contain sharers.
//! Splitting an `N`-bit vector into `√N` groups of `√N` caches keeps any
//! single access to `O(√N)` bits while the common case (sharers clustered in
//! one or two groups) stores far fewer bits than a full vector.
//!
//! The representation here is exact: leaves hold precise per-cache bits.
//! Storage accounting distinguishes:
//!
//! * [`SharerSet::storage_bits`] — the *primary-entry* width (root vector
//!   plus one resident leaf), which is what each directory entry provisions;
//! * [`HierarchicalVector::allocated_leaf_bits`] — bits currently held in
//!   secondary (overflow) leaves, which hierarchical directories store in
//!   additional entries with replicated tags.  The analytical area model
//!   charges that replication cost separately.

use crate::SharerSet;
use ccd_common::CacheId;

/// Number of cache groups (root-vector bits) used for `num_caches` caches.
#[must_use]
pub fn group_count(num_caches: usize) -> usize {
    (num_caches as f64).sqrt().ceil() as usize
}

/// Number of caches per group (leaf-vector bits).
#[must_use]
pub fn group_size(num_caches: usize) -> usize {
    num_caches.div_ceil(group_count(num_caches))
}

/// Primary-entry sharer storage bits: the root vector plus one leaf vector.
#[must_use]
pub fn entry_bits(num_caches: usize) -> u64 {
    (group_count(num_caches) + group_size(num_caches)) as u64
}

/// An exact two-level (root + leaves) sharer vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HierarchicalVector {
    num_caches: usize,
    groups: usize,
    group_size: usize,
    /// One leaf bitmask per group; `0` means the leaf is unallocated.
    leaves: Vec<u64>,
    count: usize,
}

impl HierarchicalVector {
    /// Number of groups whose leaf vector is currently allocated (non-zero).
    #[must_use]
    pub fn allocated_leaves(&self) -> usize {
        self.leaves.iter().filter(|&&l| l != 0).count()
    }

    /// Bits held in secondary leaves (all allocated leaves beyond the first),
    /// which a hierarchical directory stores in extra tagged entries.
    #[must_use]
    pub fn allocated_leaf_bits(&self) -> u64 {
        (self.allocated_leaves().saturating_sub(1) * self.group_size) as u64
    }

    /// Number of caches currently marked as sharers.
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    fn locate(&self, cache: CacheId) -> (usize, u64) {
        let group = cache.index() / self.group_size;
        let bit = 1u64 << (cache.index() % self.group_size);
        (group, bit)
    }

    fn assert_in_range(&self, cache: CacheId) {
        assert!(
            cache.index() < self.num_caches,
            "{cache} out of range for {} caches",
            self.num_caches
        );
    }
}

impl SharerSet for HierarchicalVector {
    fn new(num_caches: usize) -> Self {
        assert!(num_caches > 0, "need at least one cache");
        let groups = group_count(num_caches);
        let gsize = group_size(num_caches);
        assert!(
            gsize <= 64,
            "leaf vectors are stored in u64 words ({num_caches} caches would need {gsize}-bit leaves)"
        );
        HierarchicalVector {
            num_caches,
            groups,
            group_size: gsize,
            leaves: vec![0; groups],
            count: 0,
        }
    }

    fn num_caches(&self) -> usize {
        self.num_caches
    }

    fn add(&mut self, cache: CacheId) {
        self.assert_in_range(cache);
        let (group, bit) = self.locate(cache);
        if self.leaves[group] & bit == 0 {
            self.leaves[group] |= bit;
            self.count += 1;
        }
    }

    fn remove(&mut self, cache: CacheId) {
        self.assert_in_range(cache);
        let (group, bit) = self.locate(cache);
        if self.leaves[group] & bit != 0 {
            self.leaves[group] &= !bit;
            self.count -= 1;
        }
    }

    fn may_contain(&self, cache: CacheId) -> bool {
        if cache.index() >= self.num_caches {
            return false;
        }
        let (group, bit) = self.locate(cache);
        self.leaves[group] & bit != 0
    }

    fn is_empty(&self) -> bool {
        self.count == 0
    }

    fn invalidation_targets(&self) -> Vec<CacheId> {
        let mut targets = Vec::with_capacity(self.count);
        self.extend_targets(&mut targets);
        targets
    }

    fn extend_targets(&self, out: &mut Vec<CacheId>) {
        for (group, &leaf) in self.leaves.iter().enumerate() {
            let mut bits = leaf;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                let idx = group * self.group_size + b;
                if idx < self.num_caches {
                    out.push(CacheId::new(idx as u32));
                }
                bits &= bits - 1;
            }
        }
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn exact_count(&self) -> Option<usize> {
        Some(self.count)
    }

    fn clear(&mut self) {
        self.leaves.iter_mut().for_each(|l| *l = 0);
        self.count = 0;
    }

    fn storage_bits(&self) -> u64 {
        entry_bits(self.num_caches)
    }

    fn access_bits(&self) -> u64 {
        // A lookup or update touches the root vector and at most one leaf.
        (self.groups + self.group_size) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_is_square_root_shaped() {
        assert_eq!(group_count(1024), 32);
        assert_eq!(group_size(1024), 32);
        assert_eq!(entry_bits(1024), 64);
        assert_eq!(group_count(16), 4);
        assert_eq!(group_size(16), 4);
        // Non-square counts still cover everything.
        for n in [2usize, 3, 5, 10, 17, 100, 2000] {
            assert!(group_count(n) * group_size(n) >= n, "n = {n}");
        }
    }

    #[test]
    fn exact_add_remove_round_trip() {
        let mut s = HierarchicalVector::new(100);
        let ids = [0u32, 9, 10, 55, 99];
        for &i in &ids {
            s.add(CacheId::new(i));
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.exact_count(), Some(5));
        assert!(s.is_exact());
        let mut targets = s.invalidation_targets();
        targets.sort_unstable();
        assert_eq!(
            targets,
            ids.iter().map(|&i| CacheId::new(i)).collect::<Vec<_>>()
        );

        s.remove(CacheId::new(10));
        assert!(!s.may_contain(CacheId::new(10)));
        assert_eq!(s.count(), 4);

        // Idempotent operations.
        s.remove(CacheId::new(10));
        assert_eq!(s.count(), 4);
        s.add(CacheId::new(0));
        assert_eq!(s.count(), 4);
    }

    #[test]
    fn leaf_allocation_tracking() {
        let mut s = HierarchicalVector::new(64); // 8 groups of 8
        assert_eq!(s.allocated_leaves(), 0);
        assert_eq!(s.allocated_leaf_bits(), 0);
        s.add(CacheId::new(1));
        s.add(CacheId::new(2)); // same group
        assert_eq!(s.allocated_leaves(), 1);
        assert_eq!(
            s.allocated_leaf_bits(),
            0,
            "first leaf fits in the primary entry"
        );
        s.add(CacheId::new(63)); // a new group
        assert_eq!(s.allocated_leaves(), 2);
        assert_eq!(s.allocated_leaf_bits(), 8);
        s.clear();
        assert_eq!(s.allocated_leaves(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn access_touches_root_plus_one_leaf() {
        let s = HierarchicalVector::new(1024);
        assert_eq!(s.access_bits(), 64);
        assert!(s.access_bits() < 1024);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_add_panics() {
        let mut s = HierarchicalVector::new(8);
        s.add(CacheId::new(8));
    }
}
