//! The statistics layer of the engine: the mergeable [`SimStats`] snapshot
//! and the [`StatsPipeline`] that accumulates protocol-level counters while
//! a simulation runs.

use crate::engine::{DirectoryComplex, TileCaches};
use crate::SimReport;
use ccd_common::stats::{Counter, MeanAccumulator};
use ccd_directory::DirectoryStats;

/// Every statistic one simulation interval produces, in mergeable form.
///
/// The integer fields (counters, histogram buckets) merge commutatively
/// and associatively — any merge order produces the same aggregate.  The
/// floating-point accumulators ([`MeanAccumulator`] sums,
/// [`DirectoryStats`] occupancy/rate floats) are mathematically
/// commutative but *not* bit-exactly associative; **byte-identical**
/// aggregates therefore additionally rely on the parallel runner folding
/// snapshots in input order (which it does — results are collected by
/// input index, never by completion order).  Do not reduce snapshots in
/// worker-completion order if you need reproducible bytes.
/// [`SimStats::report`] turns a snapshot into the user-facing
/// [`SimReport`].
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// References processed while measuring.
    pub refs_processed: Counter,
    /// Private-cache accesses.
    pub cache_accesses: Counter,
    /// Private-cache misses (fills).
    pub cache_misses: Counter,
    /// Blocks invalidated by ordinary coherence traffic.
    pub coherence_invalidations: Counter,
    /// Blocks invalidated because the directory ran out of space.
    pub forced_invalidations: Counter,
    /// Periodic samples of the mean directory occupancy.
    pub occupancy_samples: MeanAccumulator,
    /// Directory statistics merged across all slices.
    pub directory: DirectoryStats,
}

impl SimStats {
    /// An empty snapshot.
    #[must_use]
    pub fn new() -> Self {
        SimStats::default()
    }

    /// Merges another snapshot into this one.  Integer fields are
    /// order-independent; the float accumulators are order-independent up
    /// to floating-point rounding only, so fold in a fixed order when
    /// bit-exact reproducibility matters (see the type-level docs).
    pub fn merge(&mut self, other: &SimStats) {
        self.refs_processed.merge(&other.refs_processed);
        self.cache_accesses.merge(&other.cache_accesses);
        self.cache_misses.merge(&other.cache_misses);
        self.coherence_invalidations
            .merge(&other.coherence_invalidations);
        self.forced_invalidations.merge(&other.forced_invalidations);
        self.occupancy_samples.merge(&other.occupancy_samples);
        self.directory.merge(&other.directory);
    }

    /// Renders the snapshot as a [`SimReport`] labelled `organization`.
    #[must_use]
    pub fn report(&self, organization: impl Into<String>) -> SimReport {
        SimReport {
            organization: organization.into(),
            refs_processed: self.refs_processed.get(),
            directory: self.directory.clone(),
            avg_directory_occupancy: self.occupancy_samples.mean(),
            cache_accesses: self.cache_accesses.get(),
            cache_misses: self.cache_misses.get(),
            coherence_invalidations: self.coherence_invalidations.get(),
            forced_invalidations: self.forced_invalidations.get(),
        }
    }
}

/// Accumulates the protocol-level counters of a running simulation and
/// assembles full [`SimStats`] snapshots from the engine's layers.
///
/// The pipeline owns only what the protocol itself observes (retired
/// references, coherence/forced invalidations, occupancy samples); cache and
/// directory counters stay in their layers and are merged in at
/// [`StatsPipeline::collect`] time.
#[derive(Clone, Debug)]
pub struct StatsPipeline {
    sample_interval: u64,
    refs_processed: u64,
    occupancy_samples: MeanAccumulator,
    coherence_invalidations: Counter,
    forced_invalidations: Counter,
}

impl StatsPipeline {
    /// Creates a pipeline sampling occupancy every `sample_interval`
    /// retired references.
    ///
    /// # Panics
    ///
    /// Panics if `sample_interval` is zero (callers validate it via
    /// [`SystemConfig::validate`](crate::SystemConfig::validate)).
    #[must_use]
    pub fn new(sample_interval: u64) -> Self {
        assert!(sample_interval > 0, "sample interval must be nonzero");
        StatsPipeline {
            sample_interval,
            refs_processed: 0,
            occupancy_samples: MeanAccumulator::new(),
            coherence_invalidations: Counter::new(),
            forced_invalidations: Counter::new(),
        }
    }

    /// References retired since the last reset.
    #[must_use]
    pub fn refs_processed(&self) -> u64 {
        self.refs_processed
    }

    /// Records one ordinary coherence invalidation.
    pub fn record_coherence_invalidation(&mut self) {
        self.coherence_invalidations.incr();
    }

    /// Records one forced (capacity-conflict) invalidation.
    pub fn record_forced_invalidation(&mut self) {
        self.forced_invalidations.incr();
    }

    /// Marks one reference as retired; returns `true` when an occupancy
    /// sample is due (the caller then feeds it to
    /// [`StatsPipeline::record_occupancy`]).
    #[must_use]
    pub fn retire_reference(&mut self) -> bool {
        self.refs_processed += 1;
        self.refs_processed.is_multiple_of(self.sample_interval)
    }

    /// Records one directory-occupancy sample.
    pub fn record_occupancy(&mut self, occupancy: f64) {
        self.occupancy_samples.record(occupancy);
    }

    /// Number of occupancy samples taken so far.
    #[must_use]
    pub fn occupancy_sample_count(&self) -> u64 {
        self.occupancy_samples.count()
    }

    /// Clears all pipeline counters (the end-of-warm-up reset).
    pub fn reset(&mut self) {
        self.refs_processed = 0;
        self.occupancy_samples = MeanAccumulator::new();
        self.coherence_invalidations.reset();
        self.forced_invalidations.reset();
    }

    /// Assembles a full snapshot from the pipeline's own counters plus the
    /// cache and directory layers.
    #[must_use]
    pub fn collect(&self, tiles: &TileCaches, directory: &DirectoryComplex) -> SimStats {
        let (accesses, misses) = tiles.totals();
        let mut cache_accesses = Counter::new();
        cache_accesses.add(accesses);
        let mut cache_misses = Counter::new();
        cache_misses.add(misses);
        let mut refs = Counter::new();
        refs.add(self.refs_processed);
        SimStats {
            refs_processed: refs,
            cache_accesses,
            cache_misses,
            coherence_invalidations: self.coherence_invalidations,
            forced_invalidations: self.forced_invalidations,
            occupancy_samples: self.occupancy_samples,
            directory: directory.merged_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retire_reference_flags_sample_points() {
        let mut pipeline = StatsPipeline::new(4);
        let due: Vec<bool> = (0..8).map(|_| pipeline.retire_reference()).collect();
        assert_eq!(
            due,
            vec![false, false, false, true, false, false, false, true]
        );
        assert_eq!(pipeline.refs_processed(), 8);
        pipeline.record_occupancy(0.5);
        assert_eq!(pipeline.occupancy_sample_count(), 1);
        pipeline.reset();
        assert_eq!(pipeline.refs_processed(), 0);
        assert_eq!(pipeline.occupancy_sample_count(), 0);
    }

    #[test]
    fn sim_stats_merge_is_order_independent() {
        let mut a = SimStats::new();
        a.refs_processed.add(10);
        a.cache_misses.add(3);
        a.occupancy_samples.record(0.25);
        a.directory.record_insertion(2, 0, 0.25);

        let mut b = SimStats::new();
        b.refs_processed.add(30);
        b.cache_misses.add(1);
        b.occupancy_samples.record(0.75);
        b.directory.record_insertion(4, 1, 0.75);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);

        let left = ab.report("x");
        let right = ba.report("x");
        assert_eq!(left.refs_processed, 40);
        assert_eq!(left.cache_misses, right.cache_misses);
        assert!((left.avg_directory_occupancy - right.avg_directory_occupancy).abs() < 1e-12);
        assert_eq!(
            left.directory.insertions.get(),
            right.directory.insertions.get()
        );
        assert!((left.avg_insertion_attempts() - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_sample_interval_panics() {
        let _ = StatsPipeline::new(0);
    }
}
