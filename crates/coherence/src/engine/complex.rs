//! The directory layer of the engine.

use crate::{DirectorySpec, SystemConfig};
use ccd_common::{ConfigError, LineAddr};
use ccd_directory::{Directory, DirectoryOp, DirectoryStats, Outcome};

/// The distributed directory: one slice per tile plus the home-slice
/// routing between global and slice-local line addresses.
///
/// A block's home slice is selected by the low-order block-number bits and
/// the slice is handed the *slice-local* line (block number with the slice
/// bits divided out) so intra-slice indexing is not aliased by the
/// interleaving.  The complex owns only directory state; cache effects and
/// statistics routing stay with the simulator's other layers.
pub struct DirectoryComplex {
    slices: Vec<Box<dyn Directory>>,
    organization: String,
}

impl std::fmt::Debug for DirectoryComplex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DirectoryComplex")
            .field("organization", &self.organization)
            .field("slices", &self.slices.len())
            .finish_non_exhaustive()
    }
}

impl DirectoryComplex {
    /// Builds one directory slice per tile of `system`, each described by
    /// `spec`.
    ///
    /// # Errors
    ///
    /// Propagates the organization's configuration errors.
    pub fn new(system: &SystemConfig, spec: &DirectorySpec) -> Result<Self, ConfigError> {
        let slices = (0..system.num_slices())
            .map(|_| spec.build_slice(system))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(DirectoryComplex {
            slices,
            organization: spec.label(),
        })
    }

    /// The label of the organization the slices implement.
    #[must_use]
    pub fn organization(&self) -> &str {
        &self.organization
    }

    /// Number of slices (= tiles).
    #[must_use]
    pub fn num_slices(&self) -> usize {
        self.slices.len()
    }

    /// Splits a global line address into its home slice and the slice-local
    /// line handed to that slice's directory.
    #[must_use]
    pub fn home_of(&self, line: LineAddr) -> (usize, LineAddr) {
        let slices = self.slices.len() as u64;
        let block = line.block_number();
        (
            (block % slices) as usize,
            LineAddr::from_block_number(block / slices),
        )
    }

    /// Reconstructs the global line address from a slice index and the
    /// slice-local line reported by that slice.
    #[must_use]
    pub fn global_line(&self, slice: usize, local: LineAddr) -> LineAddr {
        LineAddr::from_block_number(local.block_number() * self.slices.len() as u64 + slice as u64)
    }

    /// Applies `op` (already carrying a slice-local line) to `slice`.
    pub fn apply(&mut self, slice: usize, op: DirectoryOp, out: &mut Outcome) {
        self.slices[slice].apply(op, out);
    }

    /// Prefetches the home slice's candidate locations for the global line
    /// `line` (see [`Directory::prefetch_line`]).
    pub fn prefetch(&self, line: LineAddr) {
        let (slice, local) = self.home_of(line);
        self.slices[slice].prefetch_line(local);
    }

    /// Mean occupancy across all slices.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        let sum: f64 = self.slices.iter().map(|s| s.occupancy()).sum();
        sum / self.slices.len() as f64
    }

    /// Total number of valid entries across all slices.
    #[must_use]
    pub fn total_entries(&self) -> usize {
        self.slices.iter().map(|s| s.len()).sum()
    }

    /// Directory statistics merged across all slices.
    #[must_use]
    pub fn merged_stats(&self) -> DirectoryStats {
        let mut stats = DirectoryStats::new();
        for slice in &self.slices {
            stats.merge(slice.stats());
        }
        stats
    }

    /// Clears every slice's statistics, keeping contents.
    pub fn reset_stats(&mut self) {
        for slice in &mut self.slices {
            slice.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccd_common::CacheId;

    fn complex() -> DirectoryComplex {
        let system = SystemConfig::shared_l2(4);
        DirectoryComplex::new(&system, &DirectorySpec::cuckoo(4, 1.0)).unwrap()
    }

    #[test]
    fn home_routing_round_trips() {
        let complex = complex();
        for block in [0u64, 1, 5, 1023, 0xFFFF_FFFF] {
            let line = LineAddr::from_block_number(block);
            let (slice, local) = complex.home_of(line);
            assert!(slice < complex.num_slices());
            assert_eq!(complex.global_line(slice, local), line);
        }
    }

    #[test]
    fn apply_and_stats_merge_across_slices() {
        let mut complex = complex();
        let mut out = Outcome::new();
        // One insertion per slice: global blocks 0..4 land on slices 0..4.
        for block in 0..4u64 {
            let line = LineAddr::from_block_number(block);
            let (slice, local) = complex.home_of(line);
            complex.apply(
                slice,
                DirectoryOp::AddSharer {
                    line: local,
                    cache: CacheId::new(0),
                },
                &mut out,
            );
            assert!(out.allocated_new_entry());
        }
        assert_eq!(complex.total_entries(), 4);
        assert_eq!(complex.merged_stats().insertions.get(), 4);
        assert!(complex.occupancy() > 0.0);
        complex.reset_stats();
        assert_eq!(complex.merged_stats().insertions.get(), 0);
        assert_eq!(complex.total_entries(), 4, "contents survive stat resets");
    }
}
