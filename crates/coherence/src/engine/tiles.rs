//! The private-cache layer of the engine.

use crate::{Hierarchy, SystemConfig};
use ccd_cache::{AccessOutcome, Cache, CoherenceState};
use ccd_common::{AccessType, CacheId, ConfigError, CoreId, LineAddr};

/// All per-core private caches of the simulated CMP.
///
/// Owns one [`Cache`] per tracked private cache — two split I/D L1s per core
/// in the Shared-L2 hierarchy, one unified L2 per core in Private-L2 — and
/// the core→cache routing that the hierarchy implies.  It knows nothing
/// about directories or statistics pipelines; the simulator composes it with
/// a [`DirectoryComplex`](crate::engine::DirectoryComplex) and a
/// [`StatsPipeline`](crate::engine::StatsPipeline).
pub struct TileCaches {
    hierarchy: Hierarchy,
    caches: Vec<Cache>,
}

impl std::fmt::Debug for TileCaches {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TileCaches")
            .field("hierarchy", &self.hierarchy)
            .field("caches", &self.caches.len())
            .finish_non_exhaustive()
    }
}

impl TileCaches {
    /// Builds the tracked private caches of `system`.
    ///
    /// # Errors
    ///
    /// Propagates cache-geometry validation errors.
    pub fn new(system: &SystemConfig) -> Result<Self, ConfigError> {
        let tracked = system.tracked_cache();
        let caches = (0..system.num_private_caches())
            .map(|_| Cache::new(tracked))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(TileCaches {
            hierarchy: system.hierarchy,
            caches,
        })
    }

    /// Number of private caches.
    #[must_use]
    pub fn len(&self) -> usize {
        self.caches.len()
    }

    /// `true` when the system tracks no caches (never, for a valid config).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.caches.is_empty()
    }

    /// Which private cache services an access of `kind` issued by `core`.
    #[must_use]
    pub fn cache_for(&self, core: CoreId, kind: AccessType) -> CacheId {
        match self.hierarchy {
            Hierarchy::SharedL2 => {
                let base = 2 * core.raw();
                if kind.is_instruction() {
                    CacheId::new(base)
                } else {
                    CacheId::new(base + 1)
                }
            }
            Hierarchy::PrivateL2 => CacheId::new(core.raw()),
        }
    }

    /// Performs one read or write access against `cache`.
    pub fn access(&mut self, cache: CacheId, line: LineAddr, is_write: bool) -> AccessOutcome {
        if is_write {
            self.caches[cache.index()].access_write(line)
        } else {
            self.caches[cache.index()].access_read(line)
        }
    }

    /// Invalidates `line` in `cache`; returns `true` when a live copy was
    /// actually dropped.
    pub fn invalidate(&mut self, cache: CacheId, line: LineAddr) -> bool {
        self.caches[cache.index()].invalidate(line).is_some()
    }

    /// The coherence state of `line` in `cache`, if resident.
    #[must_use]
    pub fn state_of(&self, cache: CacheId, line: LineAddr) -> Option<CoherenceState> {
        self.caches[cache.index()].state_of(line)
    }

    /// Downgrades `line` in `cache` from Modified to Shared.
    pub fn downgrade(&mut self, cache: CacheId, line: LineAddr) -> bool {
        self.caches[cache.index()].downgrade(line)
    }

    /// Total `(accesses, misses)` across all caches.
    #[must_use]
    pub fn totals(&self) -> (u64, u64) {
        self.caches.iter().fold((0u64, 0u64), |(a, m), c| {
            (a + c.stats().accesses.get(), m + c.stats().misses.get())
        })
    }

    /// Clears the access statistics of every cache, keeping contents.
    pub fn reset_stats(&mut self) {
        for cache in &mut self.caches {
            cache.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccd_cache::CacheConfig;
    use ccd_common::BlockGeometry;

    fn system(hierarchy: Hierarchy) -> SystemConfig {
        SystemConfig {
            num_cores: 4,
            hierarchy,
            l1: CacheConfig::new(64, 2, 64),
            private_l2: CacheConfig::new(256, 4, 64),
            block: BlockGeometry::new(64),
            ..SystemConfig::shared_l2(4)
        }
    }

    #[test]
    fn shared_l2_routes_ifetches_and_data_to_split_l1s() {
        let tiles = TileCaches::new(&system(Hierarchy::SharedL2)).unwrap();
        assert_eq!(tiles.len(), 8);
        let core = CoreId::new(2);
        assert_eq!(
            tiles.cache_for(core, AccessType::InstructionFetch),
            CacheId::new(4)
        );
        assert_eq!(tiles.cache_for(core, AccessType::Read), CacheId::new(5));
        assert_eq!(tiles.cache_for(core, AccessType::Write), CacheId::new(5));
    }

    #[test]
    fn private_l2_routes_everything_to_one_cache_per_core() {
        let tiles = TileCaches::new(&system(Hierarchy::PrivateL2)).unwrap();
        assert_eq!(tiles.len(), 4);
        let core = CoreId::new(3);
        assert_eq!(
            tiles.cache_for(core, AccessType::InstructionFetch),
            CacheId::new(3)
        );
        assert_eq!(tiles.cache_for(core, AccessType::Write), CacheId::new(3));
    }

    #[test]
    fn access_invalidate_and_totals_round_trip() {
        let mut tiles = TileCaches::new(&system(Hierarchy::SharedL2)).unwrap();
        let line = LineAddr::from_block_number(77);
        let cache = CacheId::new(1);
        assert!(tiles.access(cache, line, false).is_miss());
        assert!(!tiles.access(cache, line, false).is_miss());
        assert_eq!(tiles.totals(), (2, 1));
        assert_eq!(tiles.state_of(cache, line), Some(CoherenceState::Shared));
        assert!(tiles.invalidate(cache, line));
        assert!(!tiles.invalidate(cache, line), "already gone");
        tiles.reset_stats();
        assert_eq!(tiles.totals(), (0, 0));
    }
}
