//! Deterministic parallel execution of independent simulations.

use crate::{CmpSimulator, DirectorySpec, SimReport, SystemConfig};
use ccd_common::ConfigError;
use ccd_workloads::WorkloadSpec;

use super::SimStats;

/// One fully-described simulation: build the system, warm it up on a
/// deterministic trace, measure, report.
///
/// A job is a pure value — running it twice, on any thread, produces the
/// same [`SimReport`].  That property is what lets the
/// [`ParallelRunner`] fan jobs out without affecting results.  The
/// workload axis is a [`WorkloadSpec`], so a job can drive the system with
/// a calibrated paper profile, any parameterized scenario family, or a
/// recorded trace replayed bit-identically.
#[derive(Clone, Debug)]
pub struct SimJob {
    /// The simulated CMP.
    pub system: SystemConfig,
    /// The directory organization under test.
    pub spec: DirectorySpec,
    /// The workload driving the reference stream (profile, scenario, or
    /// trace replay).
    pub workload: WorkloadSpec,
    /// Trace-stream seed (ignored by trace replays).
    pub seed: u64,
    /// References to process before statistics are reset.
    pub warmup_refs: u64,
    /// References to measure after the reset.
    pub measure_refs: u64,
}

impl SimJob {
    /// Returns a copy of the job with a different trace seed — the
    /// per-replica variation axis.
    #[must_use]
    pub fn with_seed(&self, seed: u64) -> Self {
        SimJob {
            seed,
            ..self.clone()
        }
    }

    /// Checks that the job can be built, without running it: validates the
    /// system configuration, constructs one trial directory slice, and
    /// validates the workload (scenario knobs, replay-file header — and
    /// that a replayed recording holds at least the references this job
    /// will consume, so a short trace fails here instead of silently
    /// truncating the measurement).  Cheap relative to a simulation, so
    /// batch runners can reject a bad sweep before spending any simulation
    /// wall-clock.
    ///
    /// # Errors
    ///
    /// The error [`SimJob::run`] would eventually surface.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.system.validate()?;
        self.spec.build_slice(&self.system)?;
        self.workload
            .validate(self.system.num_cores, self.warmup_refs + self.measure_refs)
    }

    /// Runs the job to completion.
    ///
    /// # Errors
    ///
    /// Propagates construction errors; see [`CmpSimulator::new`].
    pub fn run(&self) -> Result<SimReport, ConfigError> {
        let (organization, stats) = self.run_stats()?;
        Ok(stats.report(organization))
    }

    /// Runs the job and returns its organization label plus the raw,
    /// mergeable statistics snapshot (used by replica reductions).
    ///
    /// # Errors
    ///
    /// Propagates construction errors; see [`CmpSimulator::new`].
    pub fn run_stats(&self) -> Result<(String, SimStats), ConfigError> {
        let mut sim = CmpSimulator::new(self.system.clone(), &self.spec)?;
        let mut trace = self.workload.stream(self.system.num_cores, self.seed)?;
        sim.run(&mut trace, self.warmup_refs);
        sim.reset_stats();
        sim.run(&mut trace, self.measure_refs);
        Ok((sim.organization().to_string(), sim.stats()))
    }
}

/// Fans independent work items across `std::thread::scope` workers with
/// deterministic, order-independent result collection.
///
/// Three properties make every run reproducible:
///
/// 1. each item is processed by a pure function of the item alone (no
///    shared mutable state),
/// 2. results are stored by *input index*, never by completion order,
/// 3. reductions ([`ParallelRunner::run_replicas`]) fold the indexed
///    results in input order — which is what makes the floating-point
///    accumulators inside [`SimStats`] bit-exactly reproducible (float
///    addition is not associative; the integer counters would be
///    order-independent on their own).
///
/// A runner with one worker executes inline on the calling thread, so
/// `CCD_WORKERS=1` gives a genuinely serial run for A/B comparisons; the
/// outputs must be (and are, see the determinism tests) byte-identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelRunner {
    workers: usize,
}

impl Default for ParallelRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl ParallelRunner {
    /// A runner with one worker per available hardware thread.
    #[must_use]
    pub fn new() -> Self {
        let workers = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        ParallelRunner { workers }
    }

    /// A runner with exactly `workers` workers (clamped to at least one).
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        ParallelRunner {
            workers: workers.max(1),
        }
    }

    /// A single-worker runner: everything executes inline, in input order,
    /// on the calling thread.
    #[must_use]
    pub fn serial() -> Self {
        Self::with_workers(1)
    }

    /// Reads the worker count from the `CCD_WORKERS` environment variable
    /// (`1` forces a serial run); an unset variable defaults to
    /// [`ParallelRunner::new`].
    ///
    /// # Errors
    ///
    /// [`ConfigError::Parse`] — quoting the offending token, consistent
    /// with the spec parsers — when the variable is set but is not a
    /// positive integer (`0` would mean "no workers at all" and is
    /// rejected rather than silently clamped; unparseable values are
    /// rejected rather than silently falling back to the default).
    pub fn from_env() -> Result<Self, ConfigError> {
        match std::env::var("CCD_WORKERS") {
            Err(std::env::VarError::NotPresent) => Ok(Self::new()),
            Err(std::env::VarError::NotUnicode(_)) => Err(ConfigError::Parse {
                what: "CCD_WORKERS is not valid unicode; \
                       expected a positive worker count"
                    .to_string(),
            }),
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(workers) if workers >= 1 => Ok(Self::with_workers(workers)),
                _ => Err(ConfigError::Parse {
                    what: format!(
                        "CCD_WORKERS `{}`: expected a positive worker count",
                        raw.trim()
                    ),
                }),
            },
        }
    }

    /// Number of worker threads the runner fans out to.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// `true` when the runner executes inline without spawning threads.
    #[must_use]
    pub fn is_serial(&self) -> bool {
        self.workers == 1
    }

    /// Applies `f` to every item, returning results in input order.
    ///
    /// With more than one worker the items are claimed dynamically (an
    /// atomic cursor) so long and short jobs load-balance; the output order
    /// is the input order regardless.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if self.is_serial() || items.len() <= 1 {
            return items.iter().map(f).collect();
        }
        let workers = self.workers.min(items.len());
        let results: Vec<std::sync::Mutex<Option<R>>> =
            items.iter().map(|_| std::sync::Mutex::new(None)).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // ordering: Relaxed suffices — the cursor only hands out
                    // distinct indices (fetch_add is atomic at every
                    // ordering); results are published through each slot's
                    // Mutex and the scope join, not through this counter.
                    let index = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if index >= items.len() {
                        break;
                    }
                    let result = f(&items[index]);
                    *results[index].lock().unwrap() = Some(result);
                });
            }
        });

        results
            .into_iter()
            .map(|slot| slot.into_inner().unwrap().expect("every item processed"))
            .collect()
    }

    /// Runs every job, returning reports in job order.
    ///
    /// Every job is [validated](SimJob::validate) up front, so a
    /// mis-configured cell fails the whole batch *before* any simulation
    /// wall-clock is spent.
    ///
    /// # Errors
    ///
    /// Returns the first (in job order) construction error, if any.
    pub fn run_jobs(&self, jobs: &[SimJob]) -> Result<Vec<SimReport>, ConfigError> {
        for job in jobs {
            job.validate()?;
        }
        self.map(jobs, SimJob::run).into_iter().collect()
    }

    /// Runs `job` once per seed and reduces the per-replica statistics into
    /// one aggregate report.
    ///
    /// The reduction folds the indexed results in seed order — a fixed
    /// order regardless of worker scheduling, so even the floating-point
    /// accumulators come out bit-identical on every run.
    ///
    /// # Errors
    ///
    /// Returns the first construction error, if any.  With an empty seed
    /// list the job's own seed is used (one replica).
    pub fn run_replicas(&self, job: &SimJob, seeds: &[u64]) -> Result<SimReport, ConfigError> {
        job.validate()?;
        let own = [job.seed];
        let seeds = if seeds.is_empty() { &own[..] } else { seeds };
        let results: Vec<_> = self.map(seeds, |&seed| job.with_seed(seed).run_stats());
        let mut merged = SimStats::new();
        let mut organization = String::new();
        for result in results {
            let (label, stats) = result?;
            organization = label;
            merged.merge(&stats);
        }
        Ok(merged.report(organization))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Hierarchy;

    fn quick_job() -> SimJob {
        SimJob {
            system: SystemConfig::shared_l2(4),
            spec: DirectorySpec::cuckoo(4, 1.0),
            workload: ccd_workloads::WorkloadProfile::apache().into(),
            seed: 7,
            warmup_refs: 5_000,
            measure_refs: 5_000,
        }
    }

    #[test]
    fn map_preserves_input_order_at_any_worker_count() {
        let items: Vec<u64> = (0..64).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * 3).collect();
        for workers in [1, 2, 7, 64] {
            let runner = ParallelRunner::with_workers(workers);
            assert_eq!(
                runner.map(&items, |&x| x * 3),
                expected,
                "{workers} workers"
            );
        }
        assert!(ParallelRunner::serial().is_serial());
        assert!(ParallelRunner::serial()
            .map(&Vec::<u64>::new(), |&x| x)
            .is_empty());
    }

    #[test]
    fn jobs_produce_identical_reports_serially_and_in_parallel() {
        let jobs: Vec<SimJob> = (0..4).map(|i| quick_job().with_seed(i)).collect();
        let serial = ParallelRunner::serial().run_jobs(&jobs).unwrap();
        let parallel = ParallelRunner::with_workers(4).run_jobs(&jobs).unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.refs_processed, p.refs_processed);
            assert_eq!(s.cache_misses, p.cache_misses);
            assert_eq!(s.directory.insertions.get(), p.directory.insertions.get());
            assert!((s.avg_directory_occupancy - p.avg_directory_occupancy).abs() == 0.0);
        }
    }

    #[test]
    fn replica_reduction_is_schedule_independent() {
        let job = quick_job();
        let seeds = [1u64, 2, 3, 4, 5];
        let serial = ParallelRunner::serial().run_replicas(&job, &seeds).unwrap();
        let parallel = ParallelRunner::with_workers(5)
            .run_replicas(&job, &seeds)
            .unwrap();
        assert_eq!(serial.refs_processed, 5 * job.measure_refs);
        assert_eq!(serial.refs_processed, parallel.refs_processed);
        assert_eq!(serial.cache_accesses, parallel.cache_accesses);
        assert_eq!(
            serial.directory.insertion_attempts,
            parallel.directory.insertion_attempts
        );
        assert!((serial.avg_directory_occupancy - parallel.avg_directory_occupancy).abs() == 0.0);
        assert_eq!(serial.organization, "Cuckoo 1x (4-way)");
    }

    #[test]
    fn from_env_rejects_invalid_worker_counts() {
        // The only test in this binary touching CCD_WORKERS, so the env
        // mutation cannot race with a concurrent reader.
        let restore = std::env::var("CCD_WORKERS").ok();
        std::env::remove_var("CCD_WORKERS");
        assert!(ParallelRunner::from_env().is_ok());
        std::env::set_var("CCD_WORKERS", "3");
        assert_eq!(ParallelRunner::from_env().unwrap().workers(), 3);
        std::env::set_var("CCD_WORKERS", " 1 ");
        assert!(ParallelRunner::from_env().unwrap().is_serial());
        for bad in ["0", "-2", "many", "1.5"] {
            std::env::set_var("CCD_WORKERS", bad);
            let err = ParallelRunner::from_env().unwrap_err().to_string();
            assert!(err.contains("CCD_WORKERS"), "{err}");
            assert!(
                err.contains(&format!("`{bad}`")),
                "must quote the token: {err}"
            );
        }
        match restore {
            Some(value) => std::env::set_var("CCD_WORKERS", value),
            None => std::env::remove_var("CCD_WORKERS"),
        }
    }

    #[test]
    fn bad_jobs_surface_their_config_errors() {
        let mut job = quick_job();
        job.system = SystemConfig::shared_l2(3); // not a power of two
        assert!(ParallelRunner::new().run_jobs(&[job.clone()]).is_err());
        assert!(ParallelRunner::new().run_replicas(&job, &[1, 2]).is_err());

        // Workload errors are caught by up-front validation too.
        let mut job = quick_job();
        job.workload = WorkloadSpec::replay("/definitely/not/a/trace.ccdt");
        assert!(job.validate().is_err());
        assert!(ParallelRunner::new().run_jobs(&[job]).is_err());
        let mut job = quick_job();
        job.workload = "migratory-16c".parse().unwrap(); // pins 16, system has 4
        assert!(job.validate().is_err());
    }

    #[test]
    fn scenario_workloads_drive_jobs_like_profiles() {
        let mut job = quick_job();
        job.workload = "falseshare-b32".parse().unwrap();
        let report = job.run().unwrap();
        assert_eq!(report.refs_processed, job.measure_refs);
        assert!(
            report.coherence_invalidations > 0,
            "false sharing must invalidate"
        );
        // Scenario jobs are deterministic values like any other.
        let again = job.run().unwrap();
        assert_eq!(report, again);
    }

    #[test]
    fn private_l2_jobs_run_too() {
        let mut job = quick_job();
        job.system = SystemConfig {
            num_cores: 4,
            ..SystemConfig::shared_l2(4)
        }
        .with_hierarchy(Hierarchy::PrivateL2);
        let report = job.run().unwrap();
        assert_eq!(report.refs_processed, job.measure_refs);
    }
}
