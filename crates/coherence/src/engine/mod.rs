//! The layered simulation engine.
//!
//! [`CmpSimulator`](crate::CmpSimulator) is a thin composition of three
//! explicit layers, each independently testable:
//!
//! * [`TileCaches`] — the per-core private caches and the core→cache
//!   routing the hierarchy implies;
//! * [`DirectoryComplex`] — the directory slices plus the home-slice
//!   interleaving between global and slice-local lines;
//! * [`StatsPipeline`] — the protocol-level counters, assembled on demand
//!   into a mergeable [`SimStats`] snapshot.
//!
//! On top of the layers, [`SimJob`] describes one complete simulation as a
//! pure value and [`ParallelRunner`] fans independent jobs (sweep points,
//! per-seed replicas) across `std::thread::scope` workers with
//! deterministic, order-independent result collection: outputs depend only
//! on the job list, never on worker scheduling.

pub mod complex;
pub mod runner;
pub mod stats;
pub mod tiles;

pub use complex::DirectoryComplex;
pub use runner::{ParallelRunner, SimJob};
pub use stats::{SimStats, StatsPipeline};
pub use tiles::TileCaches;
