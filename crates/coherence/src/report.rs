//! Aggregated simulation results.

use ccd_directory::DirectoryStats;

/// The result of one simulation run: directory statistics merged across all
/// slices plus cache-side and protocol-side counters.
///
/// These are the quantities the paper's evaluation figures report:
/// [`SimReport::avg_directory_occupancy`] (Figure 8),
/// [`SimReport::avg_insertion_attempts`] (Figures 9–11) and
/// [`SimReport::forced_invalidation_rate`] (Figures 9 and 12).
#[derive(Clone, Debug, PartialEq)]
pub struct SimReport {
    /// Label of the directory organization simulated.
    pub organization: String,
    /// Number of memory references processed while measuring.
    pub refs_processed: u64,
    /// Directory statistics merged across all slices.
    pub directory: DirectoryStats,
    /// Directory occupancy sampled over time, averaged across slices.
    pub avg_directory_occupancy: f64,
    /// Private-cache accesses.
    pub cache_accesses: u64,
    /// Private-cache misses (fills).
    pub cache_misses: u64,
    /// Blocks invalidated in private caches by exclusive (write/upgrade)
    /// requests — ordinary coherence traffic.
    pub coherence_invalidations: u64,
    /// Blocks invalidated in private caches because the directory ran out of
    /// space — the "forced invalidations" the Cuckoo directory eliminates.
    pub forced_invalidations: u64,
}

impl SimReport {
    /// Forced evictions per directory insertion (the paper's invalidation
    /// rate, Figure 12), as a fraction.
    #[must_use]
    pub fn forced_invalidation_rate(&self) -> f64 {
        self.directory.forced_invalidation_rate()
    }

    /// Average insertion attempts per directory insertion (Figures 9, 10).
    #[must_use]
    pub fn avg_insertion_attempts(&self) -> f64 {
        self.directory.avg_insertion_attempts()
    }

    /// Private-cache miss rate.
    #[must_use]
    pub fn cache_miss_rate(&self) -> f64 {
        if self.cache_accesses == 0 {
            0.0
        } else {
            self.cache_misses as f64 / self.cache_accesses as f64
        }
    }

    /// One-line human-readable summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{}: occupancy {:.1}%, avg attempts {:.2}, forced-invalidation rate {:.4}%, miss rate {:.2}%",
            self.organization,
            self.avg_directory_occupancy * 100.0,
            self.avg_insertion_attempts(),
            self.forced_invalidation_rate() * 100.0,
            self.cache_miss_rate() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates_handle_empty_reports() {
        let report = SimReport {
            organization: "test".to_string(),
            refs_processed: 0,
            directory: DirectoryStats::new(),
            avg_directory_occupancy: 0.0,
            cache_accesses: 0,
            cache_misses: 0,
            coherence_invalidations: 0,
            forced_invalidations: 0,
        };
        assert_eq!(report.cache_miss_rate(), 0.0);
        assert_eq!(report.forced_invalidation_rate(), 0.0);
        assert_eq!(report.avg_insertion_attempts(), 0.0);
        assert!(report.summary().contains("test"));
    }

    #[test]
    fn summary_reports_percentages() {
        let mut stats = DirectoryStats::new();
        stats.record_insertion(2, 1, 0.5);
        let report = SimReport {
            organization: "Sparse 2x (8-way)".to_string(),
            refs_processed: 100,
            directory: stats,
            avg_directory_occupancy: 0.5,
            cache_accesses: 100,
            cache_misses: 25,
            coherence_invalidations: 3,
            forced_invalidations: 1,
        };
        assert!((report.cache_miss_rate() - 0.25).abs() < 1e-12);
        let s = report.summary();
        assert!(s.contains("Sparse 2x"));
        assert!(s.contains("50.0%"));
    }
}
