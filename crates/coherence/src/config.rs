//! System (tiled-CMP) configuration.

use ccd_cache::CacheConfig;
use ccd_common::{BlockGeometry, ConfigError};
use std::fmt;

/// Which cache level the coherence directory tracks (Section 2, Figure 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Hierarchy {
    /// Private split I/D L1s backed by a shared, address-interleaved L2;
    /// the directory tracks L1 blocks (two caches per core).
    SharedL2,
    /// Private unified L2 per core (L1s are inclusive in it); the directory
    /// tracks L2 blocks (one cache per core).  Also representative of a
    /// 3-level hierarchy with a shared LLC.
    PrivateL2,
}

impl fmt::Display for Hierarchy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Hierarchy::SharedL2 => f.write_str("Shared-L2"),
            Hierarchy::PrivateL2 => f.write_str("Private-L2"),
        }
    }
}

/// Default for [`SystemConfig::occupancy_sample_interval`]: sample the
/// directory occupancy every 8192 processed references.
pub const DEFAULT_OCCUPANCY_SAMPLE_INTERVAL: u64 = 8_192;

/// Configuration of the simulated tiled CMP (Table 1 of the paper).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SystemConfig {
    /// Number of cores (= tiles = directory slices).
    pub num_cores: usize,
    /// Which level the directory tracks.
    pub hierarchy: Hierarchy,
    /// Geometry of each L1 (used for both the I and D caches).
    pub l1: CacheConfig,
    /// Geometry of each private L2 (Private-L2 hierarchy only).
    pub private_l2: CacheConfig,
    /// Cache-block geometry.
    pub block: BlockGeometry,
    /// How often (in processed references) the simulator samples the mean
    /// directory occupancy for Figure 8.  Must be nonzero.
    pub occupancy_sample_interval: u64,
}

impl SystemConfig {
    /// The paper's Shared-L2 system (Table 1) scaled to `num_cores` cores:
    /// split 64 KB 2-way L1 I/D caches, 64-byte blocks.
    #[must_use]
    pub fn shared_l2(num_cores: usize) -> Self {
        SystemConfig {
            num_cores,
            hierarchy: Hierarchy::SharedL2,
            l1: CacheConfig::l1_64k(),
            private_l2: CacheConfig::l2_1m(),
            block: BlockGeometry::new(64),
            occupancy_sample_interval: DEFAULT_OCCUPANCY_SAMPLE_INTERVAL,
        }
    }

    /// The paper's Private-L2 system (Table 1) scaled to `num_cores` cores:
    /// 1 MB 16-way private L2 per core, 64-byte blocks.
    #[must_use]
    pub fn private_l2(num_cores: usize) -> Self {
        SystemConfig {
            num_cores,
            hierarchy: Hierarchy::PrivateL2,
            ..Self::shared_l2(num_cores)
        }
        .with_hierarchy(Hierarchy::PrivateL2)
    }

    /// The 16-core CMP of Table 1 with the requested hierarchy.
    #[must_use]
    pub fn table1(hierarchy: Hierarchy) -> Self {
        match hierarchy {
            Hierarchy::SharedL2 => Self::shared_l2(16),
            Hierarchy::PrivateL2 => Self::private_l2(16),
        }
    }

    /// Returns a copy with a different hierarchy.
    #[must_use]
    pub fn with_hierarchy(mut self, hierarchy: Hierarchy) -> Self {
        self.hierarchy = hierarchy;
        self
    }

    /// Returns a copy with a different occupancy sampling interval.
    #[must_use]
    pub fn with_occupancy_sample_interval(mut self, interval: u64) -> Self {
        self.occupancy_sample_interval = interval;
        self
    }

    /// Number of directory slices (one per tile).
    #[must_use]
    pub fn num_slices(&self) -> usize {
        self.num_cores
    }

    /// Number of private caches the directory tracks: 2 per core (I + D
    /// L1s) in the Shared-L2 hierarchy, 1 per core in Private-L2.
    #[must_use]
    pub fn num_private_caches(&self) -> usize {
        match self.hierarchy {
            Hierarchy::SharedL2 => 2 * self.num_cores,
            Hierarchy::PrivateL2 => self.num_cores,
        }
    }

    /// Geometry of the private caches the directory tracks.
    #[must_use]
    pub fn tracked_cache(&self) -> CacheConfig {
        match self.hierarchy {
            Hierarchy::SharedL2 => self.l1,
            Hierarchy::PrivateL2 => self.private_l2,
        }
    }

    /// Total number of private-cache frames the aggregate directory must be
    /// able to track (the worst-case number of distinct blocks).
    #[must_use]
    pub fn total_tracked_frames(&self) -> usize {
        self.tracked_cache().frames() * self.num_private_caches()
    }

    /// Worst-case number of blocks one directory slice must track — the
    /// paper's "1×" provisioning reference (Section 5.2): the number of
    /// cache frames whose addresses map to the slice.
    #[must_use]
    pub fn tracked_frames_per_slice(&self) -> usize {
        self.total_tracked_frames() / self.num_slices()
    }

    /// Number of tracked-cache sets whose blocks map to one slice, used to
    /// size the per-slice Duplicate-Tag and Tagless mirrors.
    #[must_use]
    pub fn tracked_sets_per_slice(&self) -> usize {
        (self.tracked_cache().sets / self.num_slices()).max(1)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] when the core count is zero or not a power
    /// of two (slice interleaving uses low-order bits), or when a cache
    /// geometry is invalid or too small to be divided among the slices.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_cores == 0 {
            return Err(ConfigError::Zero { what: "core count" });
        }
        if !ccd_common::is_power_of_two(self.num_cores as u64) {
            return Err(ConfigError::NotPowerOfTwo {
                what: "core count",
                value: self.num_cores as u64,
            });
        }
        self.l1.validate()?;
        self.private_l2.validate()?;
        if self.tracked_cache().sets < self.num_slices() {
            return Err(ConfigError::Inconsistent {
                what: "tracked cache has fewer sets than there are directory slices",
            });
        }
        if self.occupancy_sample_interval == 0 {
            return Err(ConfigError::Zero {
                what: "occupancy sample interval",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper() {
        let shared = SystemConfig::table1(Hierarchy::SharedL2);
        assert_eq!(shared.num_cores, 16);
        assert_eq!(shared.num_private_caches(), 32);
        assert_eq!(shared.tracked_cache().capacity_bytes(), 64 * 1024);
        // 32 caches x 1024 frames / 16 slices = 2048 -> the 1x capacity the
        // paper's 4x512 Cuckoo organization provides.
        assert_eq!(shared.tracked_frames_per_slice(), 2048);
        assert!(shared.validate().is_ok());

        let private = SystemConfig::table1(Hierarchy::PrivateL2);
        assert_eq!(private.num_private_caches(), 16);
        assert_eq!(private.tracked_cache().capacity_bytes(), 1024 * 1024);
        // 16 caches x 16384 frames / 16 slices = 16384 -> 1.5x is 3x8192.
        assert_eq!(private.tracked_frames_per_slice(), 16_384);
        assert!(private.validate().is_ok());
    }

    #[test]
    fn scaling_core_count_scales_tracked_frames() {
        let c4 = SystemConfig::shared_l2(4);
        let c64 = SystemConfig::shared_l2(64);
        // Per-slice tracked frames stay constant as the system scales (one
        // slice and one set of caches are added per core).
        assert_eq!(
            c4.tracked_frames_per_slice(),
            c64.tracked_frames_per_slice()
        );
        assert_eq!(c64.total_tracked_frames(), 16 * c4.total_tracked_frames());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = SystemConfig::shared_l2(0);
        assert!(c.validate().is_err());
        c = SystemConfig::shared_l2(12);
        assert!(c.validate().is_err());
        // More slices than L1 sets.
        let c = SystemConfig::shared_l2(1024);
        assert!(c.validate().is_err());
        assert!(SystemConfig::shared_l2(64).validate().is_ok());
    }

    #[test]
    fn occupancy_sample_interval_defaults_and_validates() {
        let c = SystemConfig::shared_l2(4);
        assert_eq!(
            c.occupancy_sample_interval,
            DEFAULT_OCCUPANCY_SAMPLE_INTERVAL
        );
        let custom = c.clone().with_occupancy_sample_interval(128);
        assert_eq!(custom.occupancy_sample_interval, 128);
        assert!(custom.validate().is_ok());
        assert!(c.with_occupancy_sample_interval(0).validate().is_err());
    }

    #[test]
    fn hierarchy_display_and_accessors() {
        assert_eq!(Hierarchy::SharedL2.to_string(), "Shared-L2");
        assert_eq!(Hierarchy::PrivateL2.to_string(), "Private-L2");
        let c = SystemConfig::private_l2(8);
        assert_eq!(c.hierarchy, Hierarchy::PrivateL2);
        assert_eq!(c.num_slices(), 8);
        assert_eq!(c.tracked_sets_per_slice(), 1024 / 8);
    }
}
