//! The tiled-CMP simulator proper: a thin composition of the engine layers.

use crate::engine::{DirectoryComplex, SimStats, StatsPipeline, TileCaches};
use crate::{DirectorySpec, SimReport, SystemConfig};
use ccd_cache::{AccessOutcome, CoherenceState};
use ccd_common::{CacheId, ConfigError, LineAddr, MemRef};
use ccd_directory::{DirectoryOp, Outcome};

/// How many upcoming references [`CmpSimulator::run`] pulls from the trace
/// at a time: each window's home-slice directory lines are prefetched before
/// the references are processed, overlapping the candidate-slot cache misses
/// of independent references.  Purely a latency optimization — references
/// are still processed one at a time, in trace order.
pub const RUN_PREFETCH_WINDOW: usize = 8;

/// A functional, trace-driven simulator of the paper's tiled CMP.
///
/// See the crate-level documentation for the modelled protocol.  The
/// simulator composes the three engine layers — [`TileCaches`] for the
/// private caches, [`DirectoryComplex`] for the distributed directory and
/// [`StatsPipeline`] for the protocol counters — and implements the
/// coherence protocol that ties them together.  It is `Send`, so whole
/// simulations can be constructed on one thread and driven on another (the
/// [`engine::ParallelRunner`](crate::engine::ParallelRunner) relies on
/// this).
pub struct CmpSimulator {
    system: SystemConfig,
    tiles: TileCaches,
    directory: DirectoryComplex,
    stats: StatsPipeline,
    /// Reusable op-outcome buffer: the per-reference protocol sequence
    /// performs no heap allocation once its capacity is warmed up.
    outcome: Outcome,
}

impl std::fmt::Debug for CmpSimulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CmpSimulator")
            .field("system", &self.system)
            .field("organization", &self.directory.organization())
            .field("refs_processed", &self.stats.refs_processed())
            .finish_non_exhaustive()
    }
}

impl CmpSimulator {
    /// Builds a simulator for `system` using the directory organization
    /// described by `spec` (one slice per tile).
    ///
    /// # Errors
    ///
    /// Propagates validation errors from the system configuration, the cache
    /// geometry, or the directory specification.
    pub fn new(system: SystemConfig, spec: &DirectorySpec) -> Result<Self, ConfigError> {
        system.validate()?;
        let tiles = TileCaches::new(&system)?;
        let directory = DirectoryComplex::new(&system, spec)?;
        let stats = StatsPipeline::new(system.occupancy_sample_interval);
        Ok(CmpSimulator {
            system,
            tiles,
            directory,
            stats,
            outcome: Outcome::new(),
        })
    }

    /// The simulated system configuration.
    #[must_use]
    pub fn system(&self) -> &SystemConfig {
        &self.system
    }

    /// The private-cache layer.
    #[must_use]
    pub fn tiles(&self) -> &TileCaches {
        &self.tiles
    }

    /// The directory layer.
    #[must_use]
    pub fn directory(&self) -> &DirectoryComplex {
        &self.directory
    }

    /// The label of the directory organization under test.
    #[must_use]
    pub fn organization(&self) -> &str {
        self.directory.organization()
    }

    /// Number of references processed since the last statistics reset.
    #[must_use]
    pub fn refs_processed(&self) -> u64 {
        self.stats.refs_processed()
    }

    /// Current mean directory occupancy across all slices.
    #[must_use]
    pub fn current_occupancy(&self) -> f64 {
        self.directory.occupancy()
    }

    /// Applies the cache-side effects of a directory update: coherence
    /// invalidations of other sharers and forced invalidations of blocks
    /// whose directory entries were evicted.
    fn apply_update(&mut self, slice: usize, line: LineAddr, out: &Outcome) {
        for &target in out.invalidate() {
            if self.tiles.invalidate(target, line) {
                self.stats.record_coherence_invalidation();
            }
        }
        for eviction in out.forced_evictions() {
            let victim_line = self.directory.global_line(slice, eviction.line);
            for &target in eviction.targets {
                if self.tiles.invalidate(target, victim_line) {
                    self.stats.record_forced_invalidation();
                }
            }
        }
    }

    /// Dispatches `op` to `slice`'s directory through the reusable outcome
    /// buffer and applies the resulting invalidations to the caches.
    fn dispatch(&mut self, slice: usize, line: LineAddr, op: DirectoryOp) {
        let mut out = std::mem::take(&mut self.outcome);
        self.directory.apply(slice, op, &mut out);
        self.apply_update(slice, line, &out);
        self.outcome = out;
    }

    /// Downgrades any cache holding `line` in Modified state (another cache
    /// is about to obtain a shared copy).  Allocation-free: one `Probe`
    /// through the reusable outcome buffer yields the sharer set.
    fn downgrade_writers(
        &mut self,
        slice: usize,
        local: LineAddr,
        line: LineAddr,
        requester: CacheId,
    ) {
        let mut out = std::mem::take(&mut self.outcome);
        self.directory
            .apply(slice, DirectoryOp::Probe { line: local }, &mut out);
        for &sharer in out.sharers() {
            if sharer != requester
                && self.tiles.state_of(sharer, line) == Some(CoherenceState::Modified)
            {
                self.tiles.downgrade(sharer, line);
            }
        }
        self.outcome = out;
    }

    /// Processes one memory reference.
    pub fn process(&mut self, mem_ref: MemRef) {
        let line = self.system.block.line_of(mem_ref.addr);
        let cache_id = self.tiles.cache_for(mem_ref.core, mem_ref.kind);
        let is_write = mem_ref.kind.is_write();

        match self.tiles.access(cache_id, line, is_write) {
            AccessOutcome::Hit => {}
            AccessOutcome::UpgradeMiss => {
                let (slice, local) = self.directory.home_of(line);
                self.dispatch(
                    slice,
                    line,
                    DirectoryOp::SetExclusive {
                        line: local,
                        cache: cache_id,
                    },
                );
            }
            AccessOutcome::Miss { victim } => {
                // Tell the victim's home slice the block left this cache.
                if let Some(evicted) = victim {
                    let (vslice, vlocal) = self.directory.home_of(evicted.line);
                    self.dispatch(
                        vslice,
                        evicted.line,
                        DirectoryOp::RemoveSharer {
                            line: vlocal,
                            cache: cache_id,
                        },
                    );
                }
                let (slice, local) = self.directory.home_of(line);
                let op = if is_write {
                    DirectoryOp::SetExclusive {
                        line: local,
                        cache: cache_id,
                    }
                } else {
                    self.downgrade_writers(slice, local, line, cache_id);
                    DirectoryOp::AddSharer {
                        line: local,
                        cache: cache_id,
                    }
                };
                self.dispatch(slice, line, op);
            }
        }

        if self.stats.retire_reference() {
            let occupancy = self.directory.occupancy();
            self.stats.record_occupancy(occupancy);
        }
    }

    /// Processes `count` references drawn from `trace`.  Stops early if the
    /// trace ends.
    ///
    /// References are pulled in windows of [`RUN_PREFETCH_WINDOW`]: the home
    /// slice of every reference in the window is asked to
    /// [prefetch](ccd_directory::Directory::prefetch_line) its candidate
    /// directory locations before the window is processed, so the directory
    /// probes of independent references overlap their cache misses.
    /// Processing order and semantics are identical to calling
    /// [`CmpSimulator::process`] in a loop.
    pub fn run<I>(&mut self, trace: &mut I, count: u64)
    where
        I: Iterator<Item = MemRef>,
    {
        let mut window = [None::<MemRef>; RUN_PREFETCH_WINDOW];
        let mut remaining = count;
        let mut trace_ended = false;
        while remaining > 0 && !trace_ended {
            let want = remaining.min(RUN_PREFETCH_WINDOW as u64) as usize;
            let mut filled = 0;
            while filled < want {
                match trace.next() {
                    Some(r) => {
                        window[filled] = Some(r);
                        filled += 1;
                    }
                    None => {
                        // Stop for good at the first exhaustion, like the
                        // sequential loop did — a non-fused iterator must
                        // not be polled again after its first `None`.
                        trace_ended = true;
                        break;
                    }
                }
            }
            for r in window.iter().take(filled).flatten() {
                let line = self.system.block.line_of(r.addr);
                self.directory.prefetch(line);
            }
            for r in window.iter().take(filled) {
                self.process(r.expect("filled window entries are present"));
            }
            remaining -= filled as u64;
        }
    }

    /// Clears all statistics (directory, cache, protocol counters) while
    /// keeping cache and directory *contents* — i.e. the end-of-warm-up
    /// reset of the paper's methodology.
    pub fn reset_stats(&mut self) {
        self.directory.reset_stats();
        self.tiles.reset_stats();
        self.stats.reset();
    }

    /// A mergeable snapshot of every statistic of the measured interval.
    ///
    /// When no periodic occupancy sample has been taken yet (short runs),
    /// the current occupancy is recorded as a single synthetic sample so
    /// the snapshot — and any aggregate merged from it — still reports a
    /// meaningful occupancy.
    #[must_use]
    pub fn stats(&self) -> SimStats {
        let mut stats = self.stats.collect(&self.tiles, &self.directory);
        if stats.occupancy_samples.count() == 0 {
            stats.occupancy_samples.record(self.directory.occupancy());
        }
        stats
    }

    /// Produces the aggregated report for the measured interval.
    #[must_use]
    pub fn report(&self) -> SimReport {
        self.stats().report(self.directory.organization())
    }

    /// Convenience wrapper: builds a simulator, warms it up and measures.
    ///
    /// # Errors
    ///
    /// Propagates construction errors; see [`CmpSimulator::new`].
    pub fn run_workload<I>(
        system: SystemConfig,
        spec: &DirectorySpec,
        trace: &mut I,
        warmup_refs: u64,
        measure_refs: u64,
    ) -> Result<SimReport, ConfigError>
    where
        I: Iterator<Item = MemRef>,
    {
        let mut sim = CmpSimulator::new(system, spec)?;
        sim.run(trace, warmup_refs);
        sim.reset_stats();
        sim.run(trace, measure_refs);
        Ok(sim.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Hierarchy;
    use ccd_common::{Address, BlockGeometry, CoreId};
    use ccd_workloads::{TraceGenerator, WorkloadProfile};

    fn small_shared_system() -> SystemConfig {
        SystemConfig {
            num_cores: 4,
            hierarchy: Hierarchy::SharedL2,
            l1: ccd_cache::CacheConfig::new(64, 2, 64),
            private_l2: ccd_cache::CacheConfig::new(256, 4, 64),
            block: BlockGeometry::new(64),
            ..SystemConfig::shared_l2(4)
        }
    }

    fn write(core: u32, block: u64) -> MemRef {
        MemRef::write(CoreId::new(core), Address::new(block * 64))
    }

    fn read(core: u32, block: u64) -> MemRef {
        MemRef::read(CoreId::new(core), Address::new(block * 64))
    }

    #[test]
    fn construction_validates_system_and_spec() {
        assert!(CmpSimulator::new(small_shared_system(), &DirectorySpec::cuckoo(4, 1.0)).is_ok());
        let mut bad = small_shared_system();
        bad.num_cores = 3;
        assert!(CmpSimulator::new(bad, &DirectorySpec::cuckoo(4, 1.0)).is_err());
        assert!(CmpSimulator::new(small_shared_system(), &DirectorySpec::cuckoo(1, 1.0)).is_err());
        let unsampled = small_shared_system().with_occupancy_sample_interval(0);
        assert!(CmpSimulator::new(unsampled, &DirectorySpec::cuckoo(4, 1.0)).is_err());
    }

    #[test]
    fn simulators_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<CmpSimulator>();
        let sim = CmpSimulator::new(small_shared_system(), &DirectorySpec::cuckoo(4, 1.0)).unwrap();
        let handle = std::thread::spawn(move || sim.current_occupancy());
        assert_eq!(handle.join().unwrap(), 0.0);
    }

    #[test]
    fn write_invalidates_other_readers() {
        let mut sim =
            CmpSimulator::new(small_shared_system(), &DirectorySpec::cuckoo(4, 1.0)).unwrap();
        // Cores 0..3 read block 100, then core 0 writes it.
        for core in 0..4 {
            sim.process(read(core, 100));
        }
        sim.process(write(0, 100));
        let report = sim.report();
        // Cores 1..3's D-caches lose their copies.
        assert_eq!(report.coherence_invalidations, 3);
        assert_eq!(report.forced_invalidations, 0);
        assert_eq!(report.refs_processed, 5);
        assert!(report.directory.invalidate_alls.get() >= 1);
    }

    #[test]
    fn upgrade_after_shared_read_goes_through_the_directory() {
        let mut sim =
            CmpSimulator::new(small_shared_system(), &DirectorySpec::cuckoo(4, 1.0)).unwrap();
        sim.process(read(1, 7));
        sim.process(read(2, 7));
        // Core 1 writes its already-resident shared copy: an upgrade miss.
        sim.process(write(1, 7));
        let report = sim.report();
        assert_eq!(
            report.coherence_invalidations, 1,
            "core 2 must be invalidated"
        );
    }

    #[test]
    fn ifetch_and_data_use_separate_l1s_in_shared_l2() {
        let mut sim =
            CmpSimulator::new(small_shared_system(), &DirectorySpec::cuckoo(4, 1.0)).unwrap();
        let addr = Address::new(64 * 50);
        sim.process(MemRef::ifetch(CoreId::new(0), addr));
        sim.process(MemRef::read(CoreId::new(0), addr));
        let report = sim.report();
        // Both the I-cache and the D-cache miss once: two directory sharers
        // for the same block, two cache misses.
        assert_eq!(report.cache_misses, 2);
        assert_eq!(report.directory.insertions.get(), 1);
        assert_eq!(report.directory.sharer_adds.get(), 1);
    }

    #[test]
    fn private_l2_hierarchy_uses_one_cache_per_core() {
        let mut system = small_shared_system();
        system.hierarchy = Hierarchy::PrivateL2;
        let mut sim = CmpSimulator::new(system, &DirectorySpec::cuckoo(3, 1.5)).unwrap();
        let addr = Address::new(64 * 10);
        sim.process(MemRef::ifetch(CoreId::new(2), addr));
        sim.process(MemRef::read(CoreId::new(2), addr));
        let report = sim.report();
        // Same cache services both: one miss, one hit.
        assert_eq!(report.cache_misses, 1);
        assert_eq!(report.cache_accesses, 2);
    }

    #[test]
    fn cache_evictions_release_directory_entries() {
        // A tiny direct-mapped-ish cache forces evictions quickly; the
        // directory must not grow beyond the cached blocks.
        let mut system = small_shared_system();
        system.l1 = ccd_cache::CacheConfig::new(4, 1, 64);
        let mut sim = CmpSimulator::new(system, &DirectorySpec::cuckoo(4, 2.0)).unwrap();
        for block in 0..1000u64 {
            sim.process(read(0, block));
        }
        // Only the 4 resident blocks of core 0's D-cache are tracked.
        assert_eq!(sim.directory().total_entries(), 4);
        let report = sim.report();
        assert_eq!(report.forced_invalidations, 0);
        assert!(report.directory.sharer_removes.get() > 900);
    }

    #[test]
    fn sparse_directory_forces_invalidations_under_pressure_but_cuckoo_does_not() {
        let system = small_shared_system();
        let profile = WorkloadProfile::ocean();
        let refs = 60_000;

        let mut sparse_trace = TraceGenerator::new(profile.clone(), 4, 7);
        let sparse = CmpSimulator::run_workload(
            system.clone(),
            &DirectorySpec::sparse(8, 0.5),
            &mut sparse_trace,
            refs,
            refs,
        )
        .unwrap();

        let mut cuckoo_trace = TraceGenerator::new(profile, 4, 7);
        let cuckoo = CmpSimulator::run_workload(
            system,
            &DirectorySpec::cuckoo(4, 1.0),
            &mut cuckoo_trace,
            refs,
            refs,
        )
        .unwrap();

        assert!(
            sparse.forced_invalidation_rate() > cuckoo.forced_invalidation_rate(),
            "sparse {} vs cuckoo {}",
            sparse.forced_invalidation_rate(),
            cuckoo.forced_invalidation_rate()
        );
        assert!(cuckoo.forced_invalidation_rate() < 0.01);
    }

    #[test]
    fn run_stops_permanently_at_the_first_trace_exhaustion() {
        // A "stuttering" non-fused source (e.g. a transiently empty queue):
        // refs 1..=3, then None, then more refs.  `run` must stop at the
        // first None and never poll the iterator again, exactly like the
        // sequential loop it replaced.
        let mut sim =
            CmpSimulator::new(small_shared_system(), &DirectorySpec::cuckoo(4, 1.0)).unwrap();
        let mut n = 0u64;
        let mut trace = std::iter::from_fn(move || {
            n += 1;
            match n {
                1..=3 => Some(read(0, n)),
                4 => None,
                _ => Some(read(0, n + 100)),
            }
        });
        sim.run(&mut trace, 64);
        assert_eq!(sim.refs_processed(), 3, "must stop at the first None");
        // The partial window before the exhaustion was still processed.
        assert!(sim.report().cache_misses >= 3);
    }

    #[test]
    fn reset_stats_keeps_contents_but_clears_counters() {
        let mut sim =
            CmpSimulator::new(small_shared_system(), &DirectorySpec::cuckoo(4, 1.0)).unwrap();
        for block in 0..100u64 {
            sim.process(read(0, block));
        }
        let occupancy_before = sim.current_occupancy();
        assert!(occupancy_before > 0.0);
        sim.reset_stats();
        assert_eq!(sim.refs_processed(), 0);
        let report = sim.report();
        assert_eq!(report.cache_accesses, 0);
        assert_eq!(report.directory.insertions.get(), 0);
        // Contents survive the reset.
        assert!((sim.current_occupancy() - occupancy_before).abs() < 1e-12);
    }

    #[test]
    fn report_occupancy_matches_directory_state_for_short_runs() {
        let mut sim =
            CmpSimulator::new(small_shared_system(), &DirectorySpec::cuckoo(4, 1.0)).unwrap();
        for block in 0..64u64 {
            sim.process(read((block % 4) as u32, block));
        }
        let report = sim.report();
        assert!(report.avg_directory_occupancy > 0.0);
        assert_eq!(report.organization, "Cuckoo 1x (4-way)");
        assert!(
            report.cache_miss_rate() > 0.9,
            "cold cache: almost all misses"
        );
    }

    #[test]
    fn custom_sample_intervals_take_effect() {
        // With a 16-reference interval a 64-reference run takes 4 periodic
        // samples; with the 8192 default it takes none (and the report falls
        // back to a single synthetic end-state sample).
        let system = small_shared_system().with_occupancy_sample_interval(16);
        let mut sim = CmpSimulator::new(system, &DirectorySpec::cuckoo(4, 1.0)).unwrap();
        for block in 0..64u64 {
            sim.process(read(0, block));
        }
        assert_eq!(sim.stats().occupancy_samples.count(), 4);

        let mut default_sim =
            CmpSimulator::new(small_shared_system(), &DirectorySpec::cuckoo(4, 1.0)).unwrap();
        for block in 0..64u64 {
            default_sim.process(read(0, block));
        }
        assert_eq!(
            default_sim.stats().occupancy_samples.count(),
            1,
            "synthetic end-state sample only"
        );
    }
}
