//! The tiled-CMP simulator proper.

use crate::{DirectorySpec, Hierarchy, SimReport, SystemConfig};
use ccd_cache::{AccessOutcome, Cache, CoherenceState};
use ccd_common::stats::{Counter, MeanAccumulator};
use ccd_common::{AccessType, BlockGeometry, CacheId, ConfigError, CoreId, LineAddr, MemRef};
use ccd_directory::{Directory, DirectoryOp, DirectoryStats, Outcome};

/// How often (in processed references) the directory occupancy is sampled.
const OCCUPANCY_SAMPLE_INTERVAL: u64 = 8_192;

/// How many upcoming references [`CmpSimulator::run`] pulls from the trace
/// at a time: each window's home-slice directory lines are prefetched before
/// the references are processed, overlapping the candidate-slot cache misses
/// of independent references.  Purely a latency optimization — references
/// are still processed one at a time, in trace order.
const RUN_PREFETCH_WINDOW: usize = 8;

/// A functional, trace-driven simulator of the paper's tiled CMP.
///
/// See the crate-level documentation for the modelled protocol.  The
/// simulator owns one private cache per tracked cache (two L1s per core in
/// the Shared-L2 hierarchy, one private L2 per core in Private-L2) and one
/// directory slice per tile.
pub struct CmpSimulator {
    system: SystemConfig,
    label: String,
    geom: BlockGeometry,
    caches: Vec<Cache>,
    slices: Vec<Box<dyn Directory>>,
    /// Reusable op-outcome buffer: the per-reference protocol sequence
    /// performs no heap allocation once its capacity is warmed up.
    outcome: Outcome,
    refs_processed: u64,
    occupancy_samples: MeanAccumulator,
    coherence_invalidations: Counter,
    forced_invalidations: Counter,
}

impl std::fmt::Debug for CmpSimulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CmpSimulator")
            .field("system", &self.system)
            .field("organization", &self.label)
            .field("refs_processed", &self.refs_processed)
            .finish_non_exhaustive()
    }
}

impl CmpSimulator {
    /// Builds a simulator for `system` using the directory organization
    /// described by `spec` (one slice per tile).
    ///
    /// # Errors
    ///
    /// Propagates validation errors from the system configuration, the cache
    /// geometry, or the directory specification.
    pub fn new(system: SystemConfig, spec: &DirectorySpec) -> Result<Self, ConfigError> {
        system.validate()?;
        let tracked_cache = system.tracked_cache();
        let caches = (0..system.num_private_caches())
            .map(|_| Cache::new(tracked_cache))
            .collect::<Result<Vec<_>, _>>()?;
        let slices = (0..system.num_slices())
            .map(|_| spec.build_slice(&system))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(CmpSimulator {
            geom: system.block,
            label: spec.label(),
            system,
            caches,
            slices,
            outcome: Outcome::new(),
            refs_processed: 0,
            occupancy_samples: MeanAccumulator::new(),
            coherence_invalidations: Counter::new(),
            forced_invalidations: Counter::new(),
        })
    }

    /// The simulated system configuration.
    #[must_use]
    pub fn system(&self) -> &SystemConfig {
        &self.system
    }

    /// The label of the directory organization under test.
    #[must_use]
    pub fn organization(&self) -> &str {
        &self.label
    }

    /// Number of references processed since the last statistics reset.
    #[must_use]
    pub fn refs_processed(&self) -> u64 {
        self.refs_processed
    }

    /// Current mean directory occupancy across all slices.
    #[must_use]
    pub fn current_occupancy(&self) -> f64 {
        let sum: f64 = self.slices.iter().map(|s| s.occupancy()).sum();
        sum / self.slices.len() as f64
    }

    /// Which private cache services an access of `kind` issued by `core`.
    fn cache_for(&self, core: CoreId, kind: AccessType) -> CacheId {
        match self.system.hierarchy {
            Hierarchy::SharedL2 => {
                let base = 2 * core.raw();
                if kind.is_instruction() {
                    CacheId::new(base)
                } else {
                    CacheId::new(base + 1)
                }
            }
            Hierarchy::PrivateL2 => CacheId::new(core.raw()),
        }
    }

    /// Splits a global line address into its home slice and the slice-local
    /// line handed to that slice's directory.
    fn home_of(&self, line: LineAddr) -> (usize, LineAddr) {
        let slices = self.system.num_slices() as u64;
        let block = line.block_number();
        (
            (block % slices) as usize,
            LineAddr::from_block_number(block / slices),
        )
    }

    /// Reconstructs the global line address from a slice index and the
    /// slice-local line reported by that slice.
    fn global_line(&self, slice: usize, local: LineAddr) -> LineAddr {
        LineAddr::from_block_number(
            local.block_number() * self.system.num_slices() as u64 + slice as u64,
        )
    }

    /// Applies the cache-side effects of a directory update: coherence
    /// invalidations of other sharers and forced invalidations of blocks
    /// whose directory entries were evicted.
    fn apply_update(&mut self, slice: usize, line: LineAddr, out: &Outcome) {
        for &target in out.invalidate() {
            if self.caches[target.index()].invalidate(line).is_some() {
                self.coherence_invalidations.incr();
            }
        }
        for eviction in out.forced_evictions() {
            let victim_line = self.global_line(slice, eviction.line);
            for &target in eviction.targets {
                if self.caches[target.index()]
                    .invalidate(victim_line)
                    .is_some()
                {
                    self.forced_invalidations.incr();
                }
            }
        }
    }

    /// Dispatches `op` to `slice`'s directory through the reusable outcome
    /// buffer and applies the resulting invalidations to the caches.
    fn dispatch(&mut self, slice: usize, line: LineAddr, op: DirectoryOp) {
        let mut out = std::mem::take(&mut self.outcome);
        self.slices[slice].apply(op, &mut out);
        self.apply_update(slice, line, &out);
        self.outcome = out;
    }

    /// Downgrades any cache holding `line` in Modified state (another cache
    /// is about to obtain a shared copy).  Allocation-free: one `Probe`
    /// through the reusable outcome buffer yields the sharer set.
    fn downgrade_writers(
        &mut self,
        slice: usize,
        local: LineAddr,
        line: LineAddr,
        requester: CacheId,
    ) {
        let mut out = std::mem::take(&mut self.outcome);
        self.slices[slice].apply(DirectoryOp::Probe { line: local }, &mut out);
        for &sharer in out.sharers() {
            if sharer != requester
                && self.caches[sharer.index()].state_of(line) == Some(CoherenceState::Modified)
            {
                self.caches[sharer.index()].downgrade(line);
            }
        }
        self.outcome = out;
    }

    /// Processes one memory reference.
    pub fn process(&mut self, mem_ref: MemRef) {
        let line = self.geom.line_of(mem_ref.addr);
        let cache_id = self.cache_for(mem_ref.core, mem_ref.kind);
        let is_write = mem_ref.kind.is_write();

        let outcome = if is_write {
            self.caches[cache_id.index()].access_write(line)
        } else {
            self.caches[cache_id.index()].access_read(line)
        };

        match outcome {
            AccessOutcome::Hit => {}
            AccessOutcome::UpgradeMiss => {
                let (slice, local) = self.home_of(line);
                self.dispatch(
                    slice,
                    line,
                    DirectoryOp::SetExclusive {
                        line: local,
                        cache: cache_id,
                    },
                );
            }
            AccessOutcome::Miss { victim } => {
                // Tell the victim's home slice the block left this cache.
                if let Some(evicted) = victim {
                    let (vslice, vlocal) = self.home_of(evicted.line);
                    self.dispatch(
                        vslice,
                        evicted.line,
                        DirectoryOp::RemoveSharer {
                            line: vlocal,
                            cache: cache_id,
                        },
                    );
                }
                let (slice, local) = self.home_of(line);
                let op = if is_write {
                    DirectoryOp::SetExclusive {
                        line: local,
                        cache: cache_id,
                    }
                } else {
                    self.downgrade_writers(slice, local, line, cache_id);
                    DirectoryOp::AddSharer {
                        line: local,
                        cache: cache_id,
                    }
                };
                self.dispatch(slice, line, op);
            }
        }

        self.refs_processed += 1;
        if self
            .refs_processed
            .is_multiple_of(OCCUPANCY_SAMPLE_INTERVAL)
        {
            let occupancy = self.current_occupancy();
            self.occupancy_samples.record(occupancy);
        }
    }

    /// Processes `count` references drawn from `trace`.  Stops early if the
    /// trace ends.
    ///
    /// References are pulled in windows of [`RUN_PREFETCH_WINDOW`]: the home
    /// slice of every reference in the window is asked to
    /// [prefetch](Directory::prefetch_line) its candidate directory
    /// locations before the window is processed, so the directory probes of
    /// independent references overlap their cache misses.  Processing order
    /// and semantics are identical to calling [`CmpSimulator::process`] in a
    /// loop.
    pub fn run<I>(&mut self, trace: &mut I, count: u64)
    where
        I: Iterator<Item = MemRef>,
    {
        let mut window = [None::<MemRef>; RUN_PREFETCH_WINDOW];
        let mut remaining = count;
        let mut trace_ended = false;
        while remaining > 0 && !trace_ended {
            let want = remaining.min(RUN_PREFETCH_WINDOW as u64) as usize;
            let mut filled = 0;
            while filled < want {
                match trace.next() {
                    Some(r) => {
                        window[filled] = Some(r);
                        filled += 1;
                    }
                    None => {
                        // Stop for good at the first exhaustion, like the
                        // sequential loop did — a non-fused iterator must
                        // not be polled again after its first `None`.
                        trace_ended = true;
                        break;
                    }
                }
            }
            for r in window.iter().take(filled).flatten() {
                let line = self.geom.line_of(r.addr);
                let (slice, local) = self.home_of(line);
                self.slices[slice].prefetch_line(local);
            }
            for r in window.iter().take(filled) {
                self.process(r.expect("filled window entries are present"));
            }
            remaining -= filled as u64;
        }
    }

    /// Clears all statistics (directory, cache, protocol counters) while
    /// keeping cache and directory *contents* — i.e. the end-of-warm-up
    /// reset of the paper's methodology.
    pub fn reset_stats(&mut self) {
        for slice in &mut self.slices {
            slice.reset_stats();
        }
        for cache in &mut self.caches {
            cache.reset_stats();
        }
        self.refs_processed = 0;
        self.occupancy_samples = MeanAccumulator::new();
        self.coherence_invalidations.reset();
        self.forced_invalidations.reset();
    }

    /// Produces the aggregated report for the measured interval.
    #[must_use]
    pub fn report(&self) -> SimReport {
        let mut directory = DirectoryStats::new();
        for slice in &self.slices {
            directory.merge(slice.stats());
        }
        let (accesses, misses) = self.caches.iter().fold((0u64, 0u64), |(a, m), c| {
            (a + c.stats().accesses.get(), m + c.stats().misses.get())
        });
        let avg_occupancy = if self.occupancy_samples.count() > 0 {
            self.occupancy_samples.mean()
        } else {
            self.current_occupancy()
        };
        SimReport {
            organization: self.label.clone(),
            refs_processed: self.refs_processed,
            directory,
            avg_directory_occupancy: avg_occupancy,
            cache_accesses: accesses,
            cache_misses: misses,
            coherence_invalidations: self.coherence_invalidations.get(),
            forced_invalidations: self.forced_invalidations.get(),
        }
    }

    /// Convenience wrapper: builds a simulator, warms it up and measures.
    ///
    /// # Errors
    ///
    /// Propagates construction errors; see [`CmpSimulator::new`].
    pub fn run_workload<I>(
        system: SystemConfig,
        spec: &DirectorySpec,
        trace: &mut I,
        warmup_refs: u64,
        measure_refs: u64,
    ) -> Result<SimReport, ConfigError>
    where
        I: Iterator<Item = MemRef>,
    {
        let mut sim = CmpSimulator::new(system, spec)?;
        sim.run(trace, warmup_refs);
        sim.reset_stats();
        sim.run(trace, measure_refs);
        Ok(sim.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccd_common::Address;
    use ccd_workloads::{TraceGenerator, WorkloadProfile};

    fn small_shared_system() -> SystemConfig {
        SystemConfig {
            num_cores: 4,
            hierarchy: Hierarchy::SharedL2,
            l1: ccd_cache::CacheConfig::new(64, 2, 64),
            private_l2: ccd_cache::CacheConfig::new(256, 4, 64),
            block: BlockGeometry::new(64),
        }
    }

    fn write(core: u32, block: u64) -> MemRef {
        MemRef::write(CoreId::new(core), Address::new(block * 64))
    }

    fn read(core: u32, block: u64) -> MemRef {
        MemRef::read(CoreId::new(core), Address::new(block * 64))
    }

    #[test]
    fn construction_validates_system_and_spec() {
        assert!(CmpSimulator::new(small_shared_system(), &DirectorySpec::cuckoo(4, 1.0)).is_ok());
        let mut bad = small_shared_system();
        bad.num_cores = 3;
        assert!(CmpSimulator::new(bad, &DirectorySpec::cuckoo(4, 1.0)).is_err());
        assert!(CmpSimulator::new(small_shared_system(), &DirectorySpec::cuckoo(1, 1.0)).is_err());
    }

    #[test]
    fn write_invalidates_other_readers() {
        let mut sim =
            CmpSimulator::new(small_shared_system(), &DirectorySpec::cuckoo(4, 1.0)).unwrap();
        // Cores 0..3 read block 100, then core 0 writes it.
        for core in 0..4 {
            sim.process(read(core, 100));
        }
        sim.process(write(0, 100));
        let report = sim.report();
        // Cores 1..3's D-caches lose their copies.
        assert_eq!(report.coherence_invalidations, 3);
        assert_eq!(report.forced_invalidations, 0);
        assert_eq!(report.refs_processed, 5);
        assert!(report.directory.invalidate_alls.get() >= 1);
    }

    #[test]
    fn upgrade_after_shared_read_goes_through_the_directory() {
        let mut sim =
            CmpSimulator::new(small_shared_system(), &DirectorySpec::cuckoo(4, 1.0)).unwrap();
        sim.process(read(1, 7));
        sim.process(read(2, 7));
        // Core 1 writes its already-resident shared copy: an upgrade miss.
        sim.process(write(1, 7));
        let report = sim.report();
        assert_eq!(
            report.coherence_invalidations, 1,
            "core 2 must be invalidated"
        );
    }

    #[test]
    fn ifetch_and_data_use_separate_l1s_in_shared_l2() {
        let mut sim =
            CmpSimulator::new(small_shared_system(), &DirectorySpec::cuckoo(4, 1.0)).unwrap();
        let addr = Address::new(64 * 50);
        sim.process(MemRef::ifetch(CoreId::new(0), addr));
        sim.process(MemRef::read(CoreId::new(0), addr));
        let report = sim.report();
        // Both the I-cache and the D-cache miss once: two directory sharers
        // for the same block, two cache misses.
        assert_eq!(report.cache_misses, 2);
        assert_eq!(report.directory.insertions.get(), 1);
        assert_eq!(report.directory.sharer_adds.get(), 1);
    }

    #[test]
    fn private_l2_hierarchy_uses_one_cache_per_core() {
        let mut system = small_shared_system();
        system.hierarchy = Hierarchy::PrivateL2;
        let mut sim = CmpSimulator::new(system, &DirectorySpec::cuckoo(3, 1.5)).unwrap();
        let addr = Address::new(64 * 10);
        sim.process(MemRef::ifetch(CoreId::new(2), addr));
        sim.process(MemRef::read(CoreId::new(2), addr));
        let report = sim.report();
        // Same cache services both: one miss, one hit.
        assert_eq!(report.cache_misses, 1);
        assert_eq!(report.cache_accesses, 2);
    }

    #[test]
    fn cache_evictions_release_directory_entries() {
        // A tiny direct-mapped-ish cache forces evictions quickly; the
        // directory must not grow beyond the cached blocks.
        let mut system = small_shared_system();
        system.l1 = ccd_cache::CacheConfig::new(4, 1, 64);
        let mut sim = CmpSimulator::new(system, &DirectorySpec::cuckoo(4, 2.0)).unwrap();
        for block in 0..1000u64 {
            sim.process(read(0, block));
        }
        let total_dir_entries: usize = (0..sim.slices.len()).map(|i| sim.slices[i].len()).sum();
        // Only the 4 resident blocks of core 0's D-cache are tracked.
        assert_eq!(total_dir_entries, 4);
        let report = sim.report();
        assert_eq!(report.forced_invalidations, 0);
        assert!(report.directory.sharer_removes.get() > 900);
    }

    #[test]
    fn sparse_directory_forces_invalidations_under_pressure_but_cuckoo_does_not() {
        let system = small_shared_system();
        let profile = WorkloadProfile::ocean();
        let refs = 60_000;

        let mut sparse_trace = TraceGenerator::new(profile.clone(), 4, 7);
        let sparse = CmpSimulator::run_workload(
            system.clone(),
            &DirectorySpec::sparse(8, 0.5),
            &mut sparse_trace,
            refs,
            refs,
        )
        .unwrap();

        let mut cuckoo_trace = TraceGenerator::new(profile, 4, 7);
        let cuckoo = CmpSimulator::run_workload(
            system,
            &DirectorySpec::cuckoo(4, 1.0),
            &mut cuckoo_trace,
            refs,
            refs,
        )
        .unwrap();

        assert!(
            sparse.forced_invalidation_rate() > cuckoo.forced_invalidation_rate(),
            "sparse {} vs cuckoo {}",
            sparse.forced_invalidation_rate(),
            cuckoo.forced_invalidation_rate()
        );
        assert!(cuckoo.forced_invalidation_rate() < 0.01);
    }

    #[test]
    fn run_stops_permanently_at_the_first_trace_exhaustion() {
        // A "stuttering" non-fused source (e.g. a transiently empty queue):
        // refs 1..=3, then None, then more refs.  `run` must stop at the
        // first None and never poll the iterator again, exactly like the
        // sequential loop it replaced.
        let mut sim =
            CmpSimulator::new(small_shared_system(), &DirectorySpec::cuckoo(4, 1.0)).unwrap();
        let mut n = 0u64;
        let mut trace = std::iter::from_fn(move || {
            n += 1;
            match n {
                1..=3 => Some(read(0, n)),
                4 => None,
                _ => Some(read(0, n + 100)),
            }
        });
        sim.run(&mut trace, 64);
        assert_eq!(sim.refs_processed(), 3, "must stop at the first None");
        // The partial window before the exhaustion was still processed.
        assert!(sim.report().cache_misses >= 3);
    }

    #[test]
    fn reset_stats_keeps_contents_but_clears_counters() {
        let mut sim =
            CmpSimulator::new(small_shared_system(), &DirectorySpec::cuckoo(4, 1.0)).unwrap();
        for block in 0..100u64 {
            sim.process(read(0, block));
        }
        let occupancy_before = sim.current_occupancy();
        assert!(occupancy_before > 0.0);
        sim.reset_stats();
        assert_eq!(sim.refs_processed(), 0);
        let report = sim.report();
        assert_eq!(report.cache_accesses, 0);
        assert_eq!(report.directory.insertions.get(), 0);
        // Contents survive the reset.
        assert!((sim.current_occupancy() - occupancy_before).abs() < 1e-12);
    }

    #[test]
    fn report_occupancy_matches_directory_state_for_short_runs() {
        let mut sim =
            CmpSimulator::new(small_shared_system(), &DirectorySpec::cuckoo(4, 1.0)).unwrap();
        for block in 0..64u64 {
            sim.process(read((block % 4) as u32, block));
        }
        let report = sim.report();
        assert!(report.avg_directory_occupancy > 0.0);
        assert_eq!(report.organization, "Cuckoo 1x (4-way)");
        assert!(
            report.cache_miss_rate() > 0.9,
            "cold cache: almost all misses"
        );
    }
}
