//! Runtime selection of the directory organization under test.
//!
//! The evaluation compares many directory organizations under identical
//! system configurations and workloads (Figure 12 and Section 5.6).
//! [`DirectorySpec`] names one organization plus its provisioning, and knows
//! how to build one slice of it sized for a given [`SystemConfig`] — so the
//! simulator, the examples and the benchmark harness all configure
//! directories the same way the paper describes them ("Sparse 2×",
//! "Cuckoo 1.5×", …).

use crate::SystemConfig;
use ccd_common::ConfigError;
use ccd_cuckoo::{CuckooConfig, CuckooDirectory};
use ccd_directory::{
    Directory, DuplicateTagDirectory, InCacheDirectory, SkewedDirectory, SparseDirectory,
    TaglessDirectory,
};
use ccd_hash::HashKind;
use ccd_sharers::FullBitVector;
use std::fmt;

/// A directory organization plus its sizing policy.
///
/// Capacities are expressed as a *provisioning factor* relative to the
/// worst-case number of blocks a slice must track
/// ([`SystemConfig::tracked_frames_per_slice`]), exactly as the paper labels
/// its configurations (Figure 9, Figure 12).
#[derive(Clone, Debug, PartialEq)]
pub enum DirectorySpec {
    /// The Cuckoo directory (the paper's contribution).
    Cuckoo {
        /// Number of ways (`d`), 3 or 4 in the paper.
        ways: usize,
        /// Capacity relative to the worst-case tracked blocks.
        provisioning: f64,
        /// Hash family indexing the ways.
        hash: HashKind,
    },
    /// A Cuckoo directory with an explicit `ways × sets` geometry.
    CuckooExplicit {
        /// Number of ways.
        ways: usize,
        /// Entries per way.
        sets: usize,
        /// Hash family indexing the ways.
        hash: HashKind,
    },
    /// Set-associative Sparse directory.
    Sparse {
        /// Associativity.
        ways: usize,
        /// Capacity relative to the worst-case tracked blocks.
        provisioning: f64,
    },
    /// Skewed-associative directory.
    Skewed {
        /// Number of ways (direct-mapped tables).
        ways: usize,
        /// Capacity relative to the worst-case tracked blocks.
        provisioning: f64,
    },
    /// Duplicate-Tag directory mirroring the tracked caches.
    DuplicateTag,
    /// In-cache directory embedded in the shared L2 (Shared-L2 hierarchy
    /// only); capacity follows the L2 bank geometry.
    InCache,
    /// Tagless (Bloom-filter grid) directory.
    Tagless {
        /// Filter buckets per (cache, set).
        buckets: usize,
        /// Hash probes per filter operation.
        probes: usize,
    },
    /// Any organization expressible as a `ccd-directory` spec string (e.g.
    /// `"cuckoo-4x512-skew"`, `"sharded4:sparse-8x512"`), resolved through
    /// [`ccd_cuckoo::standard_registry`].  The tracked-cache count is taken
    /// from the [`SystemConfig`], overriding any `-cN` modifier.
    Custom {
        /// The spec string (see `ccd_directory::spec` for the grammar).
        spec: String,
    },
}

impl DirectorySpec {
    /// The paper's selected Cuckoo configuration: `ways`-ary with the given
    /// provisioning factor, indexed by the skewing hash functions.
    #[must_use]
    pub fn cuckoo(ways: usize, provisioning: f64) -> Self {
        DirectorySpec::Cuckoo {
            ways,
            provisioning,
            hash: HashKind::Skewing,
        }
    }

    /// "Sparse 2×" / "Sparse 8×" style configurations (8-way in the paper).
    #[must_use]
    pub fn sparse(ways: usize, provisioning: f64) -> Self {
        DirectorySpec::Sparse { ways, provisioning }
    }

    /// "Skewed 2×" configuration (4-way in the paper).
    #[must_use]
    pub fn skewed(ways: usize, provisioning: f64) -> Self {
        DirectorySpec::Skewed { ways, provisioning }
    }

    /// Default Tagless configuration.
    #[must_use]
    pub fn tagless() -> Self {
        DirectorySpec::Tagless {
            buckets: ccd_directory::tagless::DEFAULT_BUCKETS,
            probes: ccd_directory::tagless::DEFAULT_PROBES,
        }
    }

    /// An organization given as a `ccd-directory` spec string (validated on
    /// construction).
    ///
    /// # Errors
    ///
    /// Returns the parse error for a malformed spec string.
    pub fn custom(spec: impl Into<String>) -> Result<Self, ConfigError> {
        let spec = spec.into();
        spec.parse::<ccd_directory::DirectorySpec>()?;
        Ok(DirectorySpec::Custom { spec })
    }

    /// A short label matching the paper's naming (e.g. `"Cuckoo 1.5x (3-way)"`).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            DirectorySpec::Cuckoo {
                ways, provisioning, ..
            } => format!("Cuckoo {provisioning}x ({ways}-way)"),
            DirectorySpec::CuckooExplicit { ways, sets, .. } => {
                format!("Cuckoo {ways}x{sets}")
            }
            DirectorySpec::Sparse { ways, provisioning } => {
                format!("Sparse {provisioning}x ({ways}-way)")
            }
            DirectorySpec::Skewed { ways, provisioning } => {
                format!("Skewed {provisioning}x ({ways}-way)")
            }
            DirectorySpec::DuplicateTag => "Duplicate-Tag".to_string(),
            DirectorySpec::InCache => "In-Cache".to_string(),
            DirectorySpec::Tagless { .. } => "Tagless".to_string(),
            DirectorySpec::Custom { spec } => spec.clone(),
        }
    }

    /// Rounds a capacity target to a power-of-two per-way set count.
    fn sets_for(ways: usize, tracked_frames: usize, provisioning: f64) -> usize {
        let capacity = (tracked_frames as f64 * provisioning).ceil() as usize;
        (capacity.div_ceil(ways.max(1))).next_power_of_two().max(2)
    }

    /// Builds one directory slice sized for `system`.
    ///
    /// # Errors
    ///
    /// Propagates the organization's own configuration errors (invalid way
    /// counts, etc.).
    pub fn build_slice(&self, system: &SystemConfig) -> Result<Box<dyn Directory>, ConfigError> {
        let tracked = system.tracked_frames_per_slice();
        let caches = system.num_private_caches();
        let cache = system.tracked_cache();
        let sets_per_slice = system.tracked_sets_per_slice();
        Ok(match self {
            DirectorySpec::Cuckoo {
                ways,
                provisioning,
                hash,
            } => {
                let config = CuckooConfig::with_provisioning(*ways, tracked, *provisioning, caches)
                    .with_hash_kind(*hash);
                Box::new(CuckooDirectory::<FullBitVector>::new(config)?)
            }
            DirectorySpec::CuckooExplicit { ways, sets, hash } => {
                let config = CuckooConfig::new(*ways, *sets, caches).with_hash_kind(*hash);
                Box::new(CuckooDirectory::<FullBitVector>::new(config)?)
            }
            DirectorySpec::Sparse { ways, provisioning } => {
                let sets = Self::sets_for(*ways, tracked, *provisioning);
                Box::new(SparseDirectory::<FullBitVector>::new(*ways, sets, caches)?)
            }
            DirectorySpec::Skewed { ways, provisioning } => {
                let sets = Self::sets_for(*ways, tracked, *provisioning);
                Box::new(SkewedDirectory::<FullBitVector>::new(*ways, sets, caches)?)
            }
            DirectorySpec::DuplicateTag => Box::new(DuplicateTagDirectory::new(
                sets_per_slice,
                cache.ways,
                caches,
            )?),
            DirectorySpec::InCache => {
                // One bank of the shared L2 per slice.
                let l2 = system.private_l2;
                let bank_sets = (l2.sets / system.num_slices()).max(1);
                Box::new(InCacheDirectory::<FullBitVector>::new(
                    l2.ways, bank_sets, caches,
                )?)
            }
            DirectorySpec::Tagless { buckets, probes } => {
                Box::new(TaglessDirectory::with_filter_geometry(
                    sets_per_slice,
                    cache.ways,
                    caches,
                    *buckets,
                    *probes,
                )?)
            }
            DirectorySpec::Custom { spec } => {
                let parsed = spec
                    .parse::<ccd_directory::DirectorySpec>()?
                    .with_caches(caches);
                ccd_cuckoo::standard_registry().build(&parsed)?
            }
        })
    }
}

impl std::str::FromStr for DirectorySpec {
    type Err = ConfigError;

    /// Parses a `ccd-directory` spec string into a
    /// [`DirectorySpec::Custom`], making the simulator configuration fully
    /// string-driven (`"cuckoo-4x512-skew"`, `"sharded8:sparse-8x256"`, …).
    fn from_str(s: &str) -> Result<Self, ConfigError> {
        DirectorySpec::custom(s)
    }
}

impl fmt::Display for DirectorySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Hierarchy;

    #[test]
    fn paper_configurations_build_with_the_expected_geometry() {
        let shared = SystemConfig::table1(Hierarchy::SharedL2);
        let private = SystemConfig::table1(Hierarchy::PrivateL2);

        // Shared-L2 1x 4-way cuckoo = 4 x 512 (Section 5.3).
        let dir = DirectorySpec::cuckoo(4, 1.0).build_slice(&shared).unwrap();
        assert_eq!(dir.capacity(), 2048);
        assert_eq!(dir.num_caches(), 32);

        // Private-L2 1.5x 3-way cuckoo = 3 x 8192 (Section 5.3).
        let dir = DirectorySpec::cuckoo(3, 1.5).build_slice(&private).unwrap();
        assert_eq!(dir.capacity(), 3 * 8192);
        assert_eq!(dir.num_caches(), 16);

        // Sparse 2x, 8-way for Shared-L2: capacity 4096.
        let dir = DirectorySpec::sparse(8, 2.0).build_slice(&shared).unwrap();
        assert_eq!(dir.capacity(), 4096);

        // Skewed 2x has the same capacity as Sparse 2x (Section 5.4).
        let dir = DirectorySpec::skewed(4, 2.0).build_slice(&shared).unwrap();
        assert_eq!(dir.capacity(), 4096);

        // Duplicate-Tag capacity equals the tracked frames per slice.
        let dir = DirectorySpec::DuplicateTag.build_slice(&shared).unwrap();
        assert_eq!(dir.capacity(), 2048);

        // Tagless and In-Cache build successfully.
        assert!(DirectorySpec::tagless().build_slice(&shared).is_ok());
        assert!(DirectorySpec::InCache.build_slice(&shared).is_ok());
    }

    #[test]
    fn labels_follow_the_paper_naming() {
        assert_eq!(DirectorySpec::sparse(8, 2.0).label(), "Sparse 2x (8-way)");
        assert_eq!(DirectorySpec::cuckoo(3, 1.5).label(), "Cuckoo 1.5x (3-way)");
        assert_eq!(DirectorySpec::DuplicateTag.label(), "Duplicate-Tag");
        assert_eq!(DirectorySpec::tagless().label(), "Tagless");
        assert_eq!(
            DirectorySpec::CuckooExplicit {
                ways: 4,
                sets: 512,
                hash: HashKind::Skewing
            }
            .label(),
            "Cuckoo 4x512"
        );
        assert_eq!(format!("{}", DirectorySpec::InCache), "In-Cache");
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let shared = SystemConfig::table1(Hierarchy::SharedL2);
        assert!(DirectorySpec::cuckoo(1, 1.0).build_slice(&shared).is_err());
        assert!(DirectorySpec::sparse(0, 2.0).build_slice(&shared).is_err());
        assert!(DirectorySpec::Tagless {
            buckets: 48,
            probes: 2
        }
        .build_slice(&shared)
        .is_err());
    }

    #[test]
    fn custom_specs_build_through_the_registry() {
        let shared = SystemConfig::table1(Hierarchy::SharedL2);
        let dir = "cuckoo-4x512-skew"
            .parse::<DirectorySpec>()
            .unwrap()
            .build_slice(&shared)
            .unwrap();
        assert_eq!(dir.capacity(), 2048);
        assert_eq!(dir.num_caches(), 32, "caches come from the system config");

        let sharded_spec = DirectorySpec::custom("sharded4:sparse-8x512").unwrap();
        assert_eq!(sharded_spec.label(), "sharded4:sparse-8x512");
        let sharded = sharded_spec.build_slice(&shared).unwrap();
        assert_eq!(sharded.capacity(), 8 * 512);

        assert!(DirectorySpec::custom("bogus-1x2").is_err());
        assert!("sparse-0x64".parse::<DirectorySpec>().is_err());
    }
}
