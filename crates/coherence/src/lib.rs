//! Trace-driven tiled-CMP coherence simulator.
//!
//! The paper evaluates directory organizations with FLEXUS full-system
//! simulation of a 16-core tiled CMP (Section 5).  This crate provides the
//! substrate that replaces it: a functional simulator that drives private
//! caches and address-interleaved directory slices with a memory-reference
//! trace and collects the directory statistics the figures report
//! (occupancy, insertion attempts, forced-invalidation rates, event mix).
//!
//! Two system configurations are modelled, matching Section 5:
//!
//! * **Shared-L2** — each core has split 64 KB 2-way I/D L1 caches; the
//!   directory tracks the L1s (32 caches for 16 cores).
//! * **Private-L2** — each core has a private 1 MB 16-way L2; the directory
//!   tracks the L2s (16 caches for 16 cores).  This also represents a
//!   3-level hierarchy with two private levels and a shared LLC.
//!
//! The directory is distributed into one slice per tile; a block's home
//! slice is selected by the low-order block-number bits and the slice is
//! handed the *slice-local* line (block number with the slice bits divided
//! out) so that intra-slice indexing is not aliased by the interleaving.
//!
//! # Engine architecture
//!
//! The simulator is a thin composition of three explicit layers (the
//! [`engine`] module):
//!
//! * [`engine::TileCaches`] — the per-core private caches plus the
//!   core→cache routing of the hierarchy;
//! * [`engine::DirectoryComplex`] — the directory slices plus the
//!   global↔slice-local line interleaving;
//! * [`engine::StatsPipeline`] — the protocol counters, assembled into a
//!   mergeable [`engine::SimStats`] snapshot (integer counters merge
//!   order-independently; float accumulators rely on the runner's fixed
//!   input-order fold for bit-exact reproducibility).
//!
//! Independent simulations — sweep points and per-seed workload replicas —
//! are described as pure [`engine::SimJob`] values and fanned across
//! threads by [`engine::ParallelRunner`], whose results are collected by
//! input index and reduced in input order, so a parallel sweep is
//! byte-identical to a serial one.
//!
//! # Example
//!
//! ```
//! use ccd_coherence::{CmpSimulator, DirectorySpec, SystemConfig};
//! use ccd_workloads::{TraceGenerator, WorkloadProfile};
//!
//! let system = SystemConfig::shared_l2(4);
//! let spec = DirectorySpec::cuckoo(4, 1.0);
//! let mut sim = CmpSimulator::new(system, &spec)?;
//! let mut trace = TraceGenerator::new(WorkloadProfile::apache(), 4, 1);
//! sim.run(&mut trace, 20_000); // warm up
//! sim.reset_stats();
//! sim.run(&mut trace, 20_000); // measure
//! let report = sim.report();
//! assert!(report.refs_processed == 20_000);
//! # Ok::<(), ccd_common::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod engine;
pub mod report;
pub mod simulator;
pub mod spec;

pub use config::{Hierarchy, SystemConfig};
pub use engine::{ParallelRunner, SimJob, SimStats};
pub use report::SimReport;
pub use simulator::CmpSimulator;
pub use spec::DirectorySpec;
