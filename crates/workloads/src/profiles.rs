//! Per-workload profiles calibrated to the paper's workload suite (Table 2).
//!
//! Each profile specifies the directory-visible characteristics of one
//! workload: the size of the instruction footprint shared by all cores, the
//! size of the shared-data region, the per-core private-data footprint, the
//! instruction/read/write mix, the fraction of data accesses that go to the
//! shared region, and the access skew.  The presets are calibrated so that
//! the qualitative behaviour the paper reports emerges:
//!
//! * the OLTP and Web workloads have large shared instruction and data
//!   footprints, so many cached blocks are replicated across caches and the
//!   directory occupancy stays well below the worst case (Figure 8),
//! * the DSS queries and the scientific kernels are dominated by large
//!   private footprints (ocean is the extreme with essentially 100 % unique
//!   private blocks), which pushes Private-L2 directory occupancy towards
//!   the worst case and motivates the 1.5× provisioning (Section 5.2),
//! * server workloads have highly skewed access patterns while the
//!   scientific kernels sweep their data uniformly (Section 5.4 notes their
//!   "more uniform distribution of accesses").

use std::fmt;

/// The workload classes of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkloadCategory {
    /// Online transaction processing (TPC-C).
    Oltp,
    /// Decision support (TPC-H).
    Dss,
    /// Web serving (SPECweb99).
    Web,
    /// Scientific kernels.
    Scientific,
}

impl fmt::Display for WorkloadCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            WorkloadCategory::Oltp => "OLTP",
            WorkloadCategory::Dss => "DSS",
            WorkloadCategory::Web => "Web",
            WorkloadCategory::Scientific => "Sci",
        };
        f.write_str(name)
    }
}

/// The parameters describing one synthetic workload.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadProfile {
    /// Short name used in figures (e.g. `"Oracle"`).
    pub name: &'static str,
    /// Workload class.
    pub category: WorkloadCategory,
    /// Blocks of instruction footprint shared by every core.
    pub shared_code_blocks: usize,
    /// Blocks of data shared among all cores.
    pub shared_data_blocks: usize,
    /// Blocks of private data per core.
    pub private_data_blocks: usize,
    /// Fraction of references that are instruction fetches.
    pub ifetch_fraction: f64,
    /// Fraction of *data* references that are writes.
    pub write_fraction: f64,
    /// Fraction of data references that target the shared-data region
    /// (the rest go to the issuing core's private region).
    pub shared_data_fraction: f64,
    /// Zipf skew of accesses within the shared regions (0 = uniform).
    pub shared_skew: f64,
    /// Zipf skew of accesses within the private regions (0 = uniform).
    pub private_skew: f64,
}

impl WorkloadProfile {
    /// IBM DB2 running TPC-C (OLTP): large shared buffer pool and hot
    /// shared instruction paths.
    #[must_use]
    pub fn db2() -> Self {
        WorkloadProfile {
            name: "DB2",
            category: WorkloadCategory::Oltp,
            shared_code_blocks: 2_048,
            shared_data_blocks: 24_576,
            private_data_blocks: 8_192,
            ifetch_fraction: 0.30,
            write_fraction: 0.16,
            shared_data_fraction: 0.62,
            shared_skew: 0.85,
            private_skew: 0.60,
        }
    }

    /// Oracle running TPC-C (OLTP): similar to DB2 with a somewhat larger
    /// private working set per server process.
    #[must_use]
    pub fn oracle() -> Self {
        WorkloadProfile {
            name: "Oracle",
            category: WorkloadCategory::Oltp,
            shared_code_blocks: 2_560,
            shared_data_blocks: 20_480,
            private_data_blocks: 10_240,
            ifetch_fraction: 0.28,
            write_fraction: 0.18,
            shared_data_fraction: 0.55,
            shared_skew: 0.80,
            private_skew: 0.55,
        }
    }

    /// TPC-H query 2 (DSS): join-heavy with moderate scans.
    #[must_use]
    pub fn qry2() -> Self {
        WorkloadProfile {
            name: "Qry2",
            category: WorkloadCategory::Dss,
            shared_code_blocks: 1_024,
            shared_data_blocks: 8_192,
            private_data_blocks: 28_672,
            ifetch_fraction: 0.22,
            write_fraction: 0.06,
            shared_data_fraction: 0.25,
            shared_skew: 0.70,
            private_skew: 0.25,
        }
    }

    /// TPC-H query 16 (DSS): scan-dominated.
    #[must_use]
    pub fn qry16() -> Self {
        WorkloadProfile {
            name: "Qry16",
            category: WorkloadCategory::Dss,
            shared_code_blocks: 1_024,
            shared_data_blocks: 6_144,
            private_data_blocks: 32_768,
            ifetch_fraction: 0.20,
            write_fraction: 0.05,
            shared_data_fraction: 0.20,
            shared_skew: 0.70,
            private_skew: 0.20,
        }
    }

    /// TPC-H query 17 (DSS): the largest scans of the three queries.
    #[must_use]
    pub fn qry17() -> Self {
        WorkloadProfile {
            name: "Qry17",
            category: WorkloadCategory::Dss,
            shared_code_blocks: 1_024,
            shared_data_blocks: 4_096,
            private_data_blocks: 40_960,
            ifetch_fraction: 0.18,
            write_fraction: 0.05,
            shared_data_fraction: 0.15,
            shared_skew: 0.65,
            private_skew: 0.15,
        }
    }

    /// Apache serving SPECweb99: very large shared instruction footprint.
    #[must_use]
    pub fn apache() -> Self {
        WorkloadProfile {
            name: "Apache",
            category: WorkloadCategory::Web,
            shared_code_blocks: 4_096,
            shared_data_blocks: 12_288,
            private_data_blocks: 6_144,
            ifetch_fraction: 0.36,
            write_fraction: 0.11,
            shared_data_fraction: 0.50,
            shared_skew: 0.90,
            private_skew: 0.60,
        }
    }

    /// Zeus serving SPECweb99: event-driven, smaller private state than
    /// Apache.
    #[must_use]
    pub fn zeus() -> Self {
        WorkloadProfile {
            name: "Zeus",
            category: WorkloadCategory::Web,
            shared_code_blocks: 3_072,
            shared_data_blocks: 14_336,
            private_data_blocks: 5_120,
            ifetch_fraction: 0.34,
            write_fraction: 0.10,
            shared_data_fraction: 0.55,
            shared_skew: 0.90,
            private_skew: 0.65,
        }
    }

    /// em3d (scientific): electromagnetic wave propagation on a bipartite
    /// graph, 15 % remote (shared) edges.
    #[must_use]
    pub fn em3d() -> Self {
        WorkloadProfile {
            name: "em3d",
            category: WorkloadCategory::Scientific,
            shared_code_blocks: 256,
            shared_data_blocks: 12_288,
            private_data_blocks: 32_768,
            ifetch_fraction: 0.06,
            write_fraction: 0.28,
            shared_data_fraction: 0.15,
            shared_skew: 0.10,
            private_skew: 0.05,
        }
    }

    /// ocean (scientific): grid relaxation with essentially fully private
    /// per-core tiles — the paper's extreme case of "nearly 100 % unique
    /// private blocks in all caches".
    #[must_use]
    pub fn ocean() -> Self {
        WorkloadProfile {
            name: "ocean",
            category: WorkloadCategory::Scientific,
            shared_code_blocks: 256,
            shared_data_blocks: 2_048,
            private_data_blocks: 49_152,
            ifetch_fraction: 0.05,
            write_fraction: 0.32,
            shared_data_fraction: 0.03,
            shared_skew: 0.10,
            private_skew: 0.02,
        }
    }

    /// All nine paper workloads in the order the figures present them
    /// (OLTP, DSS, Web, Scientific).
    #[must_use]
    pub fn all_paper_workloads() -> Vec<WorkloadProfile> {
        vec![
            Self::db2(),
            Self::oracle(),
            Self::qry2(),
            Self::qry16(),
            Self::qry17(),
            Self::apache(),
            Self::zeus(),
            Self::em3d(),
            Self::ocean(),
        ]
    }

    /// Looks a preset up by its (case-insensitive) figure name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<WorkloadProfile> {
        Self::all_paper_workloads()
            .into_iter()
            .find(|p| p.name.eq_ignore_ascii_case(name))
    }

    /// Total number of distinct blocks the workload can touch on a system
    /// with `num_cores` cores.
    #[must_use]
    pub fn total_footprint_blocks(&self, num_cores: usize) -> usize {
        self.shared_code_blocks + self.shared_data_blocks + self.private_data_blocks * num_cores
    }

    /// Validates that the profile's fractions are sane.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        let frac_ok = |f: f64| (0.0..=1.0).contains(&f);
        self.shared_code_blocks > 0
            && self.private_data_blocks > 0
            && self.shared_data_blocks > 0
            && frac_ok(self.ifetch_fraction)
            && frac_ok(self.write_fraction)
            && frac_ok(self.shared_data_fraction)
            && self.shared_skew >= 0.0
            && self.private_skew >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_are_valid_and_distinct() {
        let all = WorkloadProfile::all_paper_workloads();
        assert_eq!(all.len(), 9);
        for p in &all {
            assert!(p.is_valid(), "{} invalid", p.name);
        }
        let names: std::collections::HashSet<_> = all.iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert_eq!(WorkloadProfile::by_name("ORACLE").unwrap().name, "Oracle");
        assert_eq!(WorkloadProfile::by_name("ocean").unwrap().name, "ocean");
        assert!(WorkloadProfile::by_name("nonexistent").is_none());
    }

    #[test]
    fn scientific_workloads_are_private_dominated() {
        // The calibration property behind Figure 8: ocean's private
        // footprint dwarfs its shared footprint, OLTP's does not.
        let ocean = WorkloadProfile::ocean();
        assert!(ocean.private_data_blocks > 10 * ocean.shared_data_blocks);
        assert!(ocean.shared_data_fraction < 0.05);

        let db2 = WorkloadProfile::db2();
        assert!(db2.shared_data_blocks > db2.private_data_blocks);
        assert!(db2.shared_data_fraction > 0.5);
    }

    #[test]
    fn footprints_scale_with_core_count() {
        let p = WorkloadProfile::qry16();
        let f16 = p.total_footprint_blocks(16);
        let f32 = p.total_footprint_blocks(32);
        assert_eq!(f32 - f16, 16 * p.private_data_blocks);
    }

    #[test]
    fn category_display() {
        assert_eq!(WorkloadCategory::Oltp.to_string(), "OLTP");
        assert_eq!(WorkloadCategory::Scientific.to_string(), "Sci");
        assert_eq!(WorkloadProfile::apache().category, WorkloadCategory::Web);
    }
}
