//! Runtime selection of the workload driving a simulation.
//!
//! [`WorkloadSpec`] is to workloads what
//! `ccd_coherence::DirectorySpec` is to directory organizations: one
//! cloneable value, parseable from a string, that names *any* reference
//! stream the crate can produce — a calibrated paper profile, a
//! parameterized sharing-pattern scenario, or a recorded trace file — and
//! knows how to build it deterministically for a `(num_cores, seed)` pair.
//!
//! ```
//! use ccd_workloads::WorkloadSpec;
//!
//! // The nine paper profiles parse by their figure names…
//! let oracle: WorkloadSpec = "oracle".parse().unwrap();
//! assert_eq!(oracle.label(), "Oracle");
//!
//! // …scenario families by their spec strings…
//! let migratory: WorkloadSpec = "migratory-zipf0.9".parse().unwrap();
//! assert_eq!(migratory.label(), "migratory-zipf0.9");
//!
//! // …and recorded traces by path.
//! let replay: WorkloadSpec = "replay:results/oracle.ccdt".parse().unwrap();
//! assert_eq!(replay.label(), "replay:results/oracle.ccdt");
//!
//! // Unknown workloads name the offending input:
//! let err = "martian-b64".parse::<WorkloadSpec>().unwrap_err();
//! assert!(err.to_string().contains("martian"));
//!
//! let refs: Vec<_> = migratory.stream(16, 7).unwrap().take(64).collect();
//! assert_eq!(refs.len(), 64);
//! ```

use crate::scenario::{ScenarioSpec, TraceStream};
use crate::trace_io::TraceReader;
use crate::{TraceGenerator, WorkloadProfile};
use ccd_common::ConfigError;
use std::fmt;
use std::str::FromStr;

/// Prefix selecting trace replay in a workload spec string.
pub const REPLAY_PREFIX: &str = "replay:";

/// A workload selected at runtime: profile, scenario, or recorded trace.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadSpec {
    /// One of the nine calibrated paper profiles (Table 2 stand-ins).
    Paper(WorkloadProfile),
    /// A parameterized sharing-pattern scenario (see [`crate::scenario`]).
    Scenario(ScenarioSpec),
    /// Bit-identical replay of a recorded trace file (see
    /// [`crate::trace_io`]).  The seed is ignored — a recording *is* its
    /// own determinism — and the recorded core count must match the
    /// simulated system's.
    Replay {
        /// Path of the `CCDT` trace file.
        path: String,
    },
}

impl WorkloadSpec {
    /// A spec replaying the trace file at `path`.
    #[must_use]
    pub fn replay(path: impl Into<String>) -> Self {
        WorkloadSpec::Replay { path: path.into() }
    }

    /// The label used on sweep axes and in result files: the profile's
    /// figure name, the scenario's canonical spec string, or
    /// `replay:<path>`.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            WorkloadSpec::Paper(profile) => profile.name.to_string(),
            WorkloadSpec::Scenario(spec) => spec.to_string(),
            WorkloadSpec::Replay { path } => format!("{REPLAY_PREFIX}{path}"),
        }
    }

    /// Cheaply validates that [`WorkloadSpec::stream`] can supply
    /// `required_refs` references for `num_cores` cores, without
    /// generating anything: profile sanity, scenario knobs and core
    /// pinning, or the replay file's header (magic, version, recorded core
    /// and record counts) — record payloads are *not* read here.
    ///
    /// Profile and scenario streams are infinite, so `required_refs` only
    /// constrains replays: a recording shorter than the references a job
    /// will consume is rejected here rather than silently truncating the
    /// simulation.
    ///
    /// # Errors
    ///
    /// The error [`WorkloadSpec::stream`] would surface (except mid-file
    /// replay corruption, which only full reading can detect), plus the
    /// too-short-recording case described above.
    pub fn validate(&self, num_cores: usize, required_refs: u64) -> Result<(), ConfigError> {
        if num_cores == 0 {
            return Err(ConfigError::Zero { what: "core count" });
        }
        match self {
            WorkloadSpec::Paper(profile) => {
                if profile.is_valid() {
                    Ok(())
                } else {
                    Err(ConfigError::Inconsistent {
                        what: "workload profile fails its own validation",
                    })
                }
            }
            WorkloadSpec::Scenario(spec) => spec.validate(num_cores),
            WorkloadSpec::Replay { path } => {
                let reader = TraceReader::open(path).map_err(|e| ConfigError::Parse {
                    what: format!("trace file `{path}`: {e}"),
                })?;
                if reader.num_cores() as usize != num_cores {
                    return Err(ConfigError::Inconsistent {
                        what: "replayed trace was recorded for a different core count",
                    });
                }
                if reader.record_count() < required_refs {
                    return Err(ConfigError::TooSmall {
                        what: "replayed trace record count",
                        value: reader.record_count(),
                        min: required_refs,
                    });
                }
                Ok(())
            }
        }
    }

    /// Builds the deterministic reference stream for `(num_cores, seed)`.
    ///
    /// Profile and scenario streams are infinite; a replayed stream ends
    /// when the recording does.
    ///
    /// # Errors
    ///
    /// * invalid scenario knobs or a pinned core count differing from
    ///   `num_cores` ([`crate::ScenarioSpec::stream`]),
    /// * an unreadable, corrupt, or core-count-mismatched trace file for
    ///   [`WorkloadSpec::Replay`] (the whole file is validated up front).
    pub fn stream(&self, num_cores: usize, seed: u64) -> Result<Box<dyn TraceStream>, ConfigError> {
        if num_cores == 0 {
            return Err(ConfigError::Zero { what: "core count" });
        }
        match self {
            WorkloadSpec::Paper(profile) => Ok(Box::new(TraceGenerator::new(
                profile.clone(),
                num_cores,
                seed,
            ))),
            WorkloadSpec::Scenario(spec) => spec.stream(num_cores, seed),
            WorkloadSpec::Replay { path } => {
                let open = |path: &str| {
                    TraceReader::open(path).map_err(|e| ConfigError::Parse {
                        what: format!("trace file `{path}`: {e}"),
                    })
                };
                // Full validation pass first — streaming, O(1) memory —
                // so corruption fails the build instead of the simulation.
                let mut probe = open(path)?;
                if probe.num_cores() as usize != num_cores {
                    return Err(ConfigError::Inconsistent {
                        what: "replayed trace was recorded for a different core count",
                    });
                }
                for record in &mut probe {
                    record.map_err(|e| ConfigError::Parse {
                        what: format!("trace file `{path}`: {e}"),
                    })?;
                }
                // Then stream the validated file record by record; the
                // trace is never materialized in memory.
                Ok(Box::new(ReplayStream {
                    reader: open(path)?,
                    path: path.clone(),
                }))
            }
        }
    }
}

/// A validated trace file streamed record by record.
#[derive(Debug)]
struct ReplayStream {
    reader: TraceReader<std::io::BufReader<std::fs::File>>,
    path: String,
}

impl Iterator for ReplayStream {
    type Item = ccd_common::MemRef;

    fn next(&mut self) -> Option<Self::Item> {
        match self.reader.next()? {
            Ok(r) => Some(r),
            // The file passed a full validation pass when the stream was
            // built; an error here means it changed on disk mid-replay,
            // which no simulation result should survive.
            Err(e) => panic!("trace file `{}` changed during replay: {e}", self.path),
        }
    }
}

impl From<WorkloadProfile> for WorkloadSpec {
    fn from(profile: WorkloadProfile) -> Self {
        WorkloadSpec::Paper(profile)
    }
}

impl From<ScenarioSpec> for WorkloadSpec {
    fn from(spec: ScenarioSpec) -> Self {
        WorkloadSpec::Scenario(spec)
    }
}

impl FromStr for WorkloadSpec {
    type Err = ConfigError;

    /// Resolution order: `replay:` prefix, then (case-insensitive) paper
    /// profile names, then scenario spec strings.  The error for an
    /// unknown input reports both namespaces.
    fn from_str(input: &str) -> Result<Self, ConfigError> {
        let input = input.trim();
        if let Some(path) = input.strip_prefix(REPLAY_PREFIX) {
            if path.is_empty() {
                return Err(ConfigError::Parse {
                    what: format!("workload spec `{input}`: empty replay path"),
                });
            }
            return Ok(WorkloadSpec::replay(path));
        }
        if let Some(profile) = WorkloadProfile::by_name(input) {
            return Ok(WorkloadSpec::Paper(profile));
        }
        match input.parse::<ScenarioSpec>() {
            Ok(spec) => Ok(WorkloadSpec::Scenario(spec)),
            Err(scenario_err) => {
                let family = input.split('-').next().unwrap_or_default();
                if crate::scenario::family_by_name(family).is_some() {
                    // The family exists, so the knobs are at fault — the
                    // scenario parser's token-level error is the right one.
                    Err(scenario_err)
                } else {
                    Err(ConfigError::Parse {
                        what: format!(
                            "unknown workload `{input}`: neither a paper profile \
                             (db2, oracle, qry2, qry16, qry17, apache, zeus, em3d, ocean), \
                             a scenario family (readmostly, prodcons, migratory, \
                             falseshare, stream), nor a `{REPLAY_PREFIX}<path>` trace"
                        ),
                    })
                }
            }
        }
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_three_namespaces() {
        assert_eq!(
            "Ocean".parse::<WorkloadSpec>().unwrap(),
            WorkloadSpec::Paper(WorkloadProfile::ocean())
        );
        let scenario: WorkloadSpec = "stream-b1024".parse().unwrap();
        assert!(matches!(scenario, WorkloadSpec::Scenario(_)));
        assert_eq!(scenario.label(), "stream-b1024");
        let replay: WorkloadSpec = "replay:/tmp/x.ccdt".parse().unwrap();
        assert_eq!(replay, WorkloadSpec::replay("/tmp/x.ccdt"));
        assert_eq!(format!("{replay}"), "replay:/tmp/x.ccdt");
    }

    #[test]
    fn errors_name_the_namespace_or_token() {
        let err = "martian".parse::<WorkloadSpec>().unwrap_err().to_string();
        assert!(err.contains("martian"), "{err}");
        assert!(err.contains("paper profile"), "{err}");
        assert!(err.contains("scenario family"), "{err}");

        // A known family with a bad knob keeps the token-level error.
        let err = "migratory-q9"
            .parse::<WorkloadSpec>()
            .unwrap_err()
            .to_string();
        assert!(err.contains("`q9`"), "{err}");

        assert!("replay:".parse::<WorkloadSpec>().is_err());
    }

    #[test]
    fn replay_streams_validate_the_file_and_core_count() {
        let missing = WorkloadSpec::replay("/definitely/not/here.ccdt");
        assert!(missing.stream(4, 0).is_err());

        let dir = std::env::temp_dir().join("ccd-workload-spec-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("small.ccdt");
        let trace = TraceGenerator::new(WorkloadProfile::apache(), 4, 9);
        crate::trace_io::record_trace(&path, 4, trace, 500).unwrap();

        let spec = WorkloadSpec::replay(path.to_str().unwrap());
        let refs: Vec<_> = spec.stream(4, 123).unwrap().collect();
        assert_eq!(refs.len(), 500, "replay ends with the recording");
        let expected: Vec<_> = TraceGenerator::new(WorkloadProfile::apache(), 4, 9)
            .take(500)
            .collect();
        assert_eq!(refs, expected, "seed is ignored; the recording wins");

        assert!(spec.stream(8, 0).is_err(), "core-count mismatch is fatal");

        // A recording shorter than the references a job will consume is
        // rejected by validation instead of silently truncating the run.
        assert!(spec.validate(4, 500).is_ok());
        let err = spec.validate(4, 501).unwrap_err();
        assert!(err.to_string().contains("500"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn paper_and_scenario_streams_follow_the_seed() {
        for spec in ["oracle", "readmostly"] {
            let spec: WorkloadSpec = spec.parse().unwrap();
            let a: Vec<_> = spec.stream(4, 1).unwrap().take(200).collect();
            let b: Vec<_> = spec.stream(4, 2).unwrap().take(200).collect();
            assert_ne!(a, b);
        }
    }
}
