//! Streams of unique uniformly random keys.
//!
//! Section 5.1 characterizes d-ary cuckoo hashing by inserting "100,000
//! random values" and measuring attempts and failures as a function of
//! occupancy.  [`RandomKeyStream`] produces exactly such a stream: unique
//! 64-bit keys drawn uniformly at random, deterministic for a given seed.

use ccd_common::rng::{Rng64, Xoshiro256};
// ccd-lint: allow(no-default-hasher) reason="dedup membership only, never iterated"
use std::collections::HashSet;

/// An infinite stream of unique random 64-bit keys.
#[derive(Clone, Debug)]
pub struct RandomKeyStream {
    rng: Xoshiro256,
    // ccd-lint: allow(no-default-hasher) reason="dedup membership only, never iterated"
    seen: HashSet<u64>,
}

impl RandomKeyStream {
    /// Creates a stream seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        RandomKeyStream {
            rng: Xoshiro256::new(seed),
            // ccd-lint: allow(no-default-hasher) reason="dedup membership only, never iterated"
            seen: HashSet::new(),
        }
    }

    /// Draws the next key, guaranteed distinct from all previously drawn
    /// keys of this stream.
    pub fn next_key(&mut self) -> u64 {
        loop {
            // Keys model block numbers: keep them within the 42-bit range of
            // a 48-bit physical address space with 64-byte blocks.
            let key = self.rng.next_u64() >> 22;
            if self.seen.insert(key) {
                return key;
            }
        }
    }

    /// Draws `n` distinct keys.
    #[must_use]
    pub fn take_keys(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_key()).collect()
    }

    /// Number of keys drawn so far.
    #[must_use]
    pub fn drawn(&self) -> usize {
        self.seen.len()
    }
}

impl Iterator for RandomKeyStream {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        Some(self.next_key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_unique_and_deterministic() {
        let mut a = RandomKeyStream::new(9);
        let mut b = RandomKeyStream::new(9);
        let ka = a.take_keys(10_000);
        let kb = b.take_keys(10_000);
        assert_eq!(ka, kb);
        let unique: HashSet<_> = ka.iter().collect();
        assert_eq!(unique.len(), ka.len());
        assert_eq!(a.drawn(), 10_000);
    }

    #[test]
    fn keys_fit_in_block_number_range() {
        let mut s = RandomKeyStream::new(3);
        for k in s.take_keys(1000) {
            assert!(k < (1u64 << 42));
        }
    }

    #[test]
    fn iterator_interface_works() {
        let keys: Vec<u64> = RandomKeyStream::new(1).take(5).collect();
        assert_eq!(keys.len(), 5);
    }
}
