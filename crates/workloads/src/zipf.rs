//! Zipf-distributed sampling for access locality.
//!
//! Memory accesses of the server workloads are highly skewed: a small hot
//! working set absorbs most references while the tail is touched rarely.
//! The generators model this with a Zipf distribution over the blocks of
//! each region: block `i` (1-based rank) is accessed with probability
//! proportional to `1 / i^theta`.  `theta = 0` degenerates to a uniform
//! distribution, which the scientific kernels (regular grid/graph sweeps)
//! use.

use ccd_common::rng::Rng64;

/// A sampler drawing ranks in `[0, n)` from a Zipf distribution.
///
/// The cumulative distribution is precomputed, so each draw is a binary
/// search — O(log n) — and the memory cost is one `f64` per element.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with skew `theta >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is negative or not finite.
    #[must_use]
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "cannot sample from an empty population");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "theta must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 1..=n {
            total += 1.0 / (rank as f64).powf(theta);
            cdf.push(total);
        }
        // Normalize.
        let norm = total;
        for c in &mut cdf {
            *c /= norm;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` when the population has a single element.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `[0, len())`; rank 0 is the hottest.
    pub fn sample<R: Rng64 + ?Sized>(&self, rng: &mut R) -> usize {
        let u = rng.next_f64();
        // partition_point returns the first index whose cdf >= u.
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccd_common::rng::Xoshiro256;

    #[test]
    #[should_panic(expected = "empty population")]
    fn zero_population_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn negative_theta_panics() {
        let _ = ZipfSampler::new(10, -1.0);
    }

    #[test]
    fn uniform_when_theta_is_zero() {
        let sampler = ZipfSampler::new(10, 0.0);
        let mut rng = Xoshiro256::new(1);
        let mut counts = [0usize; 10];
        let trials = 100_000;
        for _ in 0..trials {
            counts[sampler.sample(&mut rng)] += 1;
        }
        let expected = trials as f64 / 10.0;
        for &c in &counts {
            assert!((c as f64 - expected).abs() < expected * 0.1, "count {c}");
        }
    }

    #[test]
    fn skew_concentrates_on_low_ranks() {
        let sampler = ZipfSampler::new(1000, 0.99);
        let mut rng = Xoshiro256::new(2);
        let trials = 100_000;
        let hot_hits = (0..trials)
            .filter(|_| sampler.sample(&mut rng) < 100)
            .count();
        // With theta ~1 the top 10% of ranks should absorb well over half
        // the accesses.
        assert!(
            hot_hits as f64 / trials as f64 > 0.6,
            "hot fraction {}",
            hot_hits as f64 / trials as f64
        );
    }

    #[test]
    fn samples_cover_the_whole_range() {
        let sampler = ZipfSampler::new(16, 0.5);
        let mut rng = Xoshiro256::new(3);
        let mut seen = [false; 16];
        for _ in 0..50_000 {
            seen[sampler.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(sampler.len(), 16);
        assert!(!sampler.is_empty());
    }

    #[test]
    fn singleton_population_always_returns_zero() {
        let sampler = ZipfSampler::new(1, 2.0);
        let mut rng = Xoshiro256::new(4);
        for _ in 0..100 {
            assert_eq!(sampler.sample(&mut rng), 0);
        }
    }
}
