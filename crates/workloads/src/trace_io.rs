//! Compact binary trace recording and replay.
//!
//! Any synthetic reference stream can be captured to a file and later
//! replayed **bit-identically** — same references, same order — so a
//! simulation result can be reproduced without re-running the generator, a
//! trace can be shipped to another machine, and external traces can be fed
//! to the simulator through the same door.
//!
//! # Format (`CCDT`, version 1)
//!
//! ```text
//! magic   4 bytes  "CCDT"
//! version u16 LE   1
//! cores   u32 LE   number of cores the trace was generated for
//! count   u64 LE   number of records (patched by TraceWriter::finish)
//! records count ×:
//!   kind  u8       0 = ifetch, 1 = read, 2 = write
//!   core  varint   LEB128
//!   addr  varint   LEB128 of the zig-zag–encoded delta from the previous
//!                  record's address (first record: delta from 0)
//! ```
//!
//! Delta-plus-varint encoding keeps records small (typically 3–6 bytes
//! against the 13 bytes of a naive fixed layout) because consecutive
//! references cluster in the address space.  The reader streams from any
//! [`Read`] — no memory-mapping, no seeking — and validates the header,
//! every varint and the record count.
//!
//! ```
//! use ccd_workloads::{TraceReader, TraceWriter, TraceGenerator, WorkloadProfile};
//! use std::io::Cursor;
//!
//! let refs: Vec<_> = TraceGenerator::new(WorkloadProfile::apache(), 4, 7)
//!     .take(1000)
//!     .collect();
//! let mut writer = TraceWriter::new(Cursor::new(Vec::new()), 4).unwrap();
//! for r in &refs {
//!     writer.record(*r).unwrap();
//! }
//! let (cursor, count) = writer.finish().unwrap();
//! assert_eq!(count, 1000);
//!
//! let reader = TraceReader::new(Cursor::new(cursor.into_inner())).unwrap();
//! assert_eq!(reader.num_cores(), 4);
//! let replayed: Vec<_> = reader.map(Result::unwrap).collect();
//! assert_eq!(replayed, refs, "replay is bit-identical");
//! ```

use ccd_common::{AccessType, Address, CoreId, MemRef};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

/// File magic of the trace format.
pub const TRACE_MAGIC: [u8; 4] = *b"CCDT";
/// Current format version.
pub const TRACE_VERSION: u16 = 1;
/// Byte offset of the record-count field within the header.
const COUNT_OFFSET: u64 = 4 + 2 + 4;

fn invalid(why: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, why.into())
}

fn write_varint<W: Write>(sink: &mut W, mut value: u64) -> io::Result<()> {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            return sink.write_all(&[byte]);
        }
        sink.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(src: &mut R) -> io::Result<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        src.read_exact(&mut byte)?;
        let payload = u64::from(byte[0] & 0x7F);
        if shift >= 64 || (shift == 63 && payload > 1) {
            return Err(invalid("varint overflows 64 bits"));
        }
        value |= payload << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Zig-zag encodes a signed delta into an unsigned varint payload.
const fn zigzag(delta: i64) -> u64 {
    ((delta << 1) ^ (delta >> 63)) as u64
}

/// Inverse of [`zigzag`].
const fn unzigzag(encoded: u64) -> i64 {
    ((encoded >> 1) as i64) ^ -((encoded & 1) as i64)
}

const fn kind_code(kind: AccessType) -> u8 {
    match kind {
        AccessType::InstructionFetch => 0,
        AccessType::Read => 1,
        AccessType::Write => 2,
    }
}

fn kind_of(code: u8) -> io::Result<AccessType> {
    match code {
        0 => Ok(AccessType::InstructionFetch),
        1 => Ok(AccessType::Read),
        2 => Ok(AccessType::Write),
        other => Err(invalid(format!("unknown access-type code {other}"))),
    }
}

/// Streams [`MemRef`] records into the compact binary trace format.
///
/// The sink must support seeking: the record count in the header is patched
/// when [`TraceWriter::finish`] runs (records are streamed, never
/// buffered).  Dropping the writer without calling `finish` leaves the
/// count field zero, which the reader rejects for non-empty files.
#[derive(Debug)]
pub struct TraceWriter<W: Write + Seek> {
    sink: W,
    count: u64,
    prev_addr: u64,
}

impl<W: Write + Seek> TraceWriter<W> {
    /// Writes the header and prepares to stream records.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn new(mut sink: W, num_cores: u32) -> io::Result<Self> {
        sink.write_all(&TRACE_MAGIC)?;
        sink.write_all(&TRACE_VERSION.to_le_bytes())?;
        sink.write_all(&num_cores.to_le_bytes())?;
        sink.write_all(&0u64.to_le_bytes())?; // count, patched by finish()
        Ok(TraceWriter {
            sink,
            count: 0,
            prev_addr: 0,
        })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn record(&mut self, r: MemRef) -> io::Result<()> {
        self.sink.write_all(&[kind_code(r.kind)])?;
        write_varint(&mut self.sink, u64::from(r.core.raw()))?;
        let delta = r.addr.raw().wrapping_sub(self.prev_addr) as i64;
        write_varint(&mut self.sink, zigzag(delta))?;
        self.prev_addr = r.addr.raw();
        self.count += 1;
        Ok(())
    }

    /// Records written so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Patches the record count into the header, flushes, and returns the
    /// sink together with the final record count.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn finish(mut self) -> io::Result<(W, u64)> {
        self.sink.seek(SeekFrom::Start(COUNT_OFFSET))?;
        self.sink.write_all(&self.count.to_le_bytes())?;
        self.sink.seek(SeekFrom::End(0))?;
        self.sink.flush()?;
        Ok((self.sink, self.count))
    }
}

impl TraceWriter<BufWriter<File>> {
    /// Creates (truncating) a trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation and I/O errors.
    pub fn create(path: impl AsRef<Path>, num_cores: u32) -> io::Result<Self> {
        // BufWriter<File> is Write + Seek; seeking flushes the buffer first.
        TraceWriter::new(BufWriter::new(File::create(path)?), num_cores)
    }
}

/// Records `count` references from `trace` into a file at `path`.
///
/// Convenience wrapper over [`TraceWriter`]; returns the number of records
/// actually written (fewer than `count` when the stream ends early).
///
/// # Errors
///
/// Propagates file I/O errors.
pub fn record_trace(
    path: impl AsRef<Path>,
    num_cores: u32,
    trace: impl Iterator<Item = MemRef>,
    count: u64,
) -> io::Result<u64> {
    let mut writer = TraceWriter::create(path, num_cores)?;
    for r in trace.take(usize::try_from(count).unwrap_or(usize::MAX)) {
        writer.record(r)?;
    }
    let (_, written) = writer.finish()?;
    Ok(written)
}

/// Streams [`MemRef`] records out of the compact binary trace format.
///
/// Iterates `Result<MemRef, io::Error>`: corruption anywhere in the stream
/// (bad magic, truncated varints, unknown access kinds, missing records)
/// surfaces as an error item instead of silently truncating the replay.
/// The source must end exactly at the last record — trailing bytes mean
/// the header count is wrong (typically a [`TraceWriter`] dropped without
/// `finish()`) and are reported as an error after the counted records.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    src: R,
    num_cores: u32,
    count: u64,
    remaining: u64,
    prev_addr: u64,
    poisoned: bool,
    checked_trailing: bool,
}

impl<R: Read> TraceReader<R> {
    /// Reads and validates the header.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] for a bad magic or unsupported
    /// version; otherwise propagates I/O errors.
    pub fn new(mut src: R) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        src.read_exact(&mut magic)?;
        if magic != TRACE_MAGIC {
            return Err(invalid("not a CCDT trace file (bad magic)"));
        }
        let mut version = [0u8; 2];
        src.read_exact(&mut version)?;
        let version = u16::from_le_bytes(version);
        if version != TRACE_VERSION {
            return Err(invalid(format!(
                "unsupported trace version {version} (supported: {TRACE_VERSION})"
            )));
        }
        let mut cores = [0u8; 4];
        src.read_exact(&mut cores)?;
        let mut count = [0u8; 8];
        src.read_exact(&mut count)?;
        Ok(TraceReader {
            src,
            num_cores: u32::from_le_bytes(cores),
            count: u64::from_le_bytes(count),
            remaining: u64::from_le_bytes(count),
            prev_addr: 0,
            poisoned: false,
            checked_trailing: false,
        })
    }

    /// Core count recorded in the header.
    #[must_use]
    pub fn num_cores(&self) -> u32 {
        self.num_cores
    }

    /// Total record count recorded in the header.
    ///
    /// Named `record_count` (not `count`) so it cannot be shadowed by the
    /// by-value [`Iterator::count`] during method resolution.
    #[must_use]
    pub fn record_count(&self) -> u64 {
        self.count
    }

    fn next_record(&mut self) -> io::Result<MemRef> {
        self.read_record_fields().map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                invalid(format!(
                    "trace truncated: header promised {} records, {} missing or partial",
                    self.count, self.remaining
                ))
            } else {
                e
            }
        })
    }

    fn read_record_fields(&mut self) -> io::Result<MemRef> {
        let mut kind = [0u8; 1];
        self.src.read_exact(&mut kind)?;
        let kind = kind_of(kind[0])?;
        let core = read_varint(&mut self.src)?;
        let core = u32::try_from(core).map_err(|_| invalid("core id exceeds u32"))?;
        let delta = unzigzag(read_varint(&mut self.src)?);
        let addr = self.prev_addr.wrapping_add(delta as u64);
        self.prev_addr = addr;
        Ok(MemRef::new(CoreId::new(core), Address::new(addr), kind))
    }

    /// Reads the remaining records into a vector, validating every one.
    ///
    /// # Errors
    ///
    /// The first corruption or I/O error encountered.
    pub fn read_all(mut self) -> io::Result<Vec<MemRef>> {
        // The header count is untrusted input: clamp the pre-allocation so
        // a corrupt count yields the per-record truncation error instead
        // of a capacity-overflow panic or a multi-TB allocation.
        const MAX_PREALLOC: u64 = 1 << 20;
        let capacity = usize::try_from(self.remaining.min(MAX_PREALLOC)).unwrap_or(0);
        let mut refs = Vec::with_capacity(capacity);
        for record in &mut self {
            refs.push(record?);
        }
        Ok(refs)
    }
}

impl TraceReader<BufReader<File>> {
    /// Opens a trace file at `path`.
    ///
    /// # Errors
    ///
    /// Propagates file-open errors and header validation failures.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Self> {
        TraceReader::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = io::Result<MemRef>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.poisoned {
            return None;
        }
        if self.remaining == 0 {
            // The source must end exactly where the header's count says it
            // does.  Trailing bytes mean the count is wrong — most often a
            // TraceWriter that was dropped without `finish()`, leaving the
            // count field zero — and replaying such a file silently
            // truncated would be worse than failing loudly.
            if self.checked_trailing {
                return None;
            }
            self.checked_trailing = true;
            let mut probe = [0u8; 1];
            return match self.src.read(&mut probe) {
                Ok(0) => None,
                Ok(_) => {
                    self.poisoned = true;
                    Some(Err(invalid(format!(
                        "trace has data beyond its {} recorded records \
                         (header count is wrong — unfinished TraceWriter?)",
                        self.count
                    ))))
                }
                Err(e) => {
                    self.poisoned = true;
                    Some(Err(e))
                }
            };
        }
        match self.next_record() {
            Ok(r) => {
                self.remaining -= 1;
                Some(Ok(r))
            }
            Err(e) => {
                // One error ends the stream; never yield garbage after it.
                self.poisoned = true;
                Some(Err(e))
            }
        }
    }
}

/// Reads a whole trace file: `(num_cores, records)`, every record
/// validated.
///
/// # Errors
///
/// Propagates file-open errors, header validation and record corruption.
pub fn read_trace(path: impl AsRef<Path>) -> io::Result<(u32, Vec<MemRef>)> {
    let reader = TraceReader::open(path)?;
    let cores = reader.num_cores();
    Ok((cores, reader.read_all()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ScenarioSpec, TraceGenerator, WorkloadProfile};
    use std::io::Cursor;

    fn round_trip(refs: &[MemRef], cores: u32) -> Vec<u8> {
        let mut writer = TraceWriter::new(Cursor::new(Vec::new()), cores).unwrap();
        for r in refs {
            writer.record(*r).unwrap();
        }
        let (cursor, count) = writer.finish().unwrap();
        assert_eq!(count, refs.len() as u64);
        cursor.into_inner()
    }

    #[test]
    fn profile_and_scenario_traces_round_trip_bit_identically() {
        let profile_refs: Vec<_> = TraceGenerator::new(WorkloadProfile::oracle(), 8, 3)
            .take(5_000)
            .collect();
        let scenario_refs: Vec<_> = "falseshare-b32"
            .parse::<ScenarioSpec>()
            .unwrap()
            .stream(8, 3)
            .unwrap()
            .take(5_000)
            .collect();
        for refs in [profile_refs, scenario_refs] {
            let bytes = round_trip(&refs, 8);
            let reader = TraceReader::new(Cursor::new(&bytes)).unwrap();
            assert_eq!(reader.num_cores(), 8);
            assert_eq!(reader.record_count(), 5_000);
            let replayed: Vec<_> = reader.map(Result::unwrap).collect();
            assert_eq!(replayed, refs);
        }
    }

    #[test]
    fn encoding_is_compact() {
        let refs: Vec<_> = TraceGenerator::new(WorkloadProfile::apache(), 16, 1)
            .take(10_000)
            .collect();
        let bytes = round_trip(&refs, 16);
        let per_record = (bytes.len() - 18) as f64 / refs.len() as f64;
        assert!(
            per_record < 9.0,
            "expected < 9 bytes/record, got {per_record:.2}"
        );
    }

    #[test]
    fn extreme_addresses_and_cores_survive() {
        let refs = vec![
            MemRef::read(CoreId::new(0), Address::new(u64::MAX)),
            MemRef::write(CoreId::new(u32::MAX), Address::new(0)),
            MemRef::ifetch(CoreId::new(1023), Address::new(0x0400_0000_0000)),
        ];
        let bytes = round_trip(&refs, 1024);
        let replayed: Vec<_> = TraceReader::new(Cursor::new(&bytes))
            .unwrap()
            .map(Result::unwrap)
            .collect();
        assert_eq!(replayed, refs);
    }

    #[test]
    fn corruption_is_detected_not_truncated() {
        // Bad magic.
        assert!(TraceReader::new(Cursor::new(b"NOPE".to_vec())).is_err());

        // Unsupported version.
        let mut bytes = round_trip(&[MemRef::read(CoreId::new(0), Address::new(64))], 1);
        bytes[4] = 99;
        assert!(TraceReader::new(Cursor::new(&bytes)).is_err());

        // Truncated records: header promises more than the file holds.
        let refs: Vec<_> = TraceGenerator::new(WorkloadProfile::db2(), 4, 2)
            .take(100)
            .collect();
        let mut bytes = round_trip(&refs, 4);
        bytes.truncate(bytes.len() - 3);
        let result: Result<Vec<_>, _> = TraceReader::new(Cursor::new(&bytes)).unwrap().collect();
        let err = result.unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("truncated"), "{err}");

        // Unknown access-type code poisons the stream at the right record.
        let mut bytes = round_trip(&refs, 4);
        bytes[18] = 7; // first record's kind byte
        let mut reader = TraceReader::new(Cursor::new(&bytes)).unwrap();
        assert!(reader.next().unwrap().is_err());
        assert!(reader.next().is_none(), "errors end the stream");
    }

    #[test]
    fn unfinished_writers_are_rejected_not_replayed_empty() {
        // A dropped (never finished) writer leaves count = 0 in the header
        // while records follow; the reader must flag the mismatch instead
        // of yielding a clean empty stream.
        let refs: Vec<_> = TraceGenerator::new(WorkloadProfile::db2(), 4, 2)
            .take(50)
            .collect();
        let mut writer = TraceWriter::new(Cursor::new(Vec::new()), 4).unwrap();
        for r in &refs {
            writer.record(*r).unwrap();
        }
        // Extract the sink without finish(): the header still says 0.
        let bytes = writer.sink.into_inner();
        let reader = TraceReader::new(Cursor::new(&bytes)).unwrap();
        assert_eq!(reader.record_count(), 0);
        let result: Result<Vec<_>, _> = reader.collect();
        let err = result.unwrap_err();
        assert!(err.to_string().contains("beyond"), "{err}");

        // A count that understates the records present is caught too.
        let mut bytes = round_trip(&refs, 4);
        bytes[COUNT_OFFSET as usize..][..8].copy_from_slice(&10u64.to_le_bytes());
        let result: Result<Vec<_>, _> = TraceReader::new(Cursor::new(&bytes)).unwrap().collect();
        assert!(result.is_err(), "understated count must not truncate");
    }

    #[test]
    fn file_helpers_round_trip() {
        let dir = std::env::temp_dir().join("ccd-trace-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.ccdt");

        let trace = TraceGenerator::new(WorkloadProfile::zeus(), 8, 5);
        let written = record_trace(&path, 8, trace, 2_000).unwrap();
        assert_eq!(written, 2_000);

        let (cores, refs) = read_trace(&path).unwrap();
        assert_eq!(cores, 8);
        let expected: Vec<_> = TraceGenerator::new(WorkloadProfile::zeus(), 8, 5)
            .take(2_000)
            .collect();
        assert_eq!(refs, expected);
        std::fs::remove_file(&path).ok();
    }
}
