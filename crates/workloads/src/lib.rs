//! Synthetic workload (trace) generators.
//!
//! The paper evaluates the directory organizations with full-system traces
//! of commercial and scientific applications (Table 2): TPC-C on DB2 and
//! Oracle, three TPC-H queries, SPECweb99 on Apache and Zeus, and the em3d
//! and ocean scientific kernels.  Those binaries, datasets and the
//! Simics/FLEXUS infrastructure are not available here, so this crate
//! provides *synthetic stand-ins*: memory-reference generators whose
//! directory-visible behaviour is calibrated to each workload's published
//! characteristics — the relative sizes of the shared-instruction,
//! shared-data and per-core private footprints, the read/write mix and the
//! access locality.  Those are exactly the properties that determine
//! directory occupancy (Figure 8), insertion pressure (Figures 9–11) and
//! forced-invalidation behaviour (Figure 12); see ARCHITECTURE.md for the
//! substitution rationale.
//!
//! Beyond the paper's suite, the crate is a *library of scenarios*: named,
//! parameterized sharing-pattern families (read-mostly, producer–consumer,
//! migratory, false sharing, streaming scans) selectable from compact spec
//! strings, plus a binary trace format so any synthetic run can be recorded
//! once and replayed bit-identically.
//!
//! # Structure
//!
//! * [`WorkloadProfile`] — the per-workload parameters plus presets for all
//!   nine paper workloads,
//! * [`TraceGenerator`] — an infinite iterator of [`MemRef`]s implementing
//!   the two-region (shared/private) access model,
//! * [`TraceFamily`] — a splittable family of independent per-seed replica
//!   streams for parallel sweeps,
//! * [`scenario`] — the [`WorkloadFamily`] trait, the five classic
//!   sharing-pattern families, and [`ScenarioSpec`] spec-string parsing,
//! * [`WorkloadSpec`] — one runtime-selectable handle over *any* workload:
//!   paper profile, scenario, or recorded trace,
//! * [`trace_io`] — the compact `CCDT` record/replay format
//!   ([`TraceWriter`] / [`TraceReader`]),
//! * [`zipf::ZipfSampler`] — the locality model,
//! * [`random_stream::RandomKeyStream`] — unique uniformly random keys for
//!   the pure cuckoo-hash characterization of Figure 7.
//!
//! # Example
//!
//! ```
//! use ccd_workloads::{TraceGenerator, WorkloadProfile};
//!
//! let profile = WorkloadProfile::oracle();
//! let mut generator = TraceGenerator::new(profile, 16, 42);
//! let refs: Vec<_> = generator.by_ref().take(1000).collect();
//! assert_eq!(refs.len(), 1000);
//! assert!(refs.iter().any(|r| r.kind.is_write()));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod generator;
pub mod profiles;
pub mod random_stream;
pub mod scenario;
pub mod spec;
pub mod trace_io;
pub mod zipf;

pub use generator::{derive_seed, TraceFamily, TraceGenerator};
pub use profiles::{WorkloadCategory, WorkloadProfile};
pub use random_stream::RandomKeyStream;
pub use scenario::{
    families, family_by_name, ScenarioParams, ScenarioSpec, TraceStream, WorkloadFamily,
};
pub use spec::WorkloadSpec;
pub use trace_io::{read_trace, record_trace, TraceReader, TraceWriter};
pub use zipf::ZipfSampler;

pub use ccd_common::MemRef;
