//! The trace generator: turns a [`WorkloadProfile`] into an infinite stream
//! of memory references.
//!
//! The address-space layout keeps the three region classes disjoint:
//!
//! ```text
//! 0x0100_0000_0000 .. : shared instruction footprint
//! 0x0200_0000_0000 .. : shared data footprint
//! 0x0400_0000_0000 .. : per-core private regions (one span per core)
//! ```
//!
//! Each reference picks a region according to the profile's fractions, a
//! block within the region according to its Zipf skew, and a byte offset
//! within the block uniformly.  Logical blocks are laid out on 8 KB pages
//! (Table 1) whose *physical* page frames are scattered pseudo-randomly
//! within the region, mimicking OS physical-page allocation: consecutive
//! logical pages do not occupy consecutive frames, so directory and cache
//! sets see the realistic, non-uniform load that makes low-associativity
//! Sparse directories conflict (Section 3.2).  The stream is deterministic
//! for a given `(profile, num_cores, seed)` triple.

use crate::{WorkloadProfile, ZipfSampler};
use ccd_common::rng::{Rng64, SplitMix64, Xoshiro256};
use ccd_common::{AccessType, Address, CoreId, MemRef, DEFAULT_BLOCK_BYTES};

/// Base byte address of the shared-instruction region.
pub const CODE_REGION_BASE: u64 = 0x0100_0000_0000;
/// Base byte address of the shared-data region.
pub const SHARED_DATA_BASE: u64 = 0x0200_0000_0000;
/// Base byte address of the first core's private region.
pub const PRIVATE_REGION_BASE: u64 = 0x0400_0000_0000;
/// Byte span reserved for each core's private region.
pub const PRIVATE_REGION_SPAN: u64 = 0x0000_1000_0000;

/// Page size used for physical scattering (Table 1: 8 KB pages).
pub const PAGE_BYTES: u64 = 8 * 1024;
/// Cache blocks per page.
pub const BLOCKS_PER_PAGE: u64 = PAGE_BYTES / DEFAULT_BLOCK_BYTES;
/// Number of physical page frames each region's pages are scattered over.
/// 32 768 frames × 8 KB = 256 MB, which exactly fills one private-region
/// span while keeping the probability of two logical pages landing on the
/// same frame negligible for the paper's footprints (≤ a few hundred pages
/// per region).
const FRAMES_PER_REGION: u64 = PRIVATE_REGION_SPAN / PAGE_BYTES;

/// An infinite, deterministic stream of memory references following a
/// workload profile.
#[derive(Clone, Debug)]
pub struct TraceGenerator {
    profile: WorkloadProfile,
    num_cores: usize,
    rng: Xoshiro256,
    code_sampler: ZipfSampler,
    shared_sampler: ZipfSampler,
    private_sampler: ZipfSampler,
    next_core: usize,
}

impl TraceGenerator {
    /// Creates a generator for `num_cores` cores from `profile`, seeded with
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero or the profile is invalid.
    #[must_use]
    pub fn new(profile: WorkloadProfile, num_cores: usize, seed: u64) -> Self {
        assert!(num_cores > 0, "need at least one core");
        assert!(profile.is_valid(), "invalid workload profile");
        let code_sampler = ZipfSampler::new(profile.shared_code_blocks, profile.shared_skew);
        let shared_sampler = ZipfSampler::new(profile.shared_data_blocks, profile.shared_skew);
        let private_sampler = ZipfSampler::new(profile.private_data_blocks, profile.private_skew);
        TraceGenerator {
            profile,
            num_cores,
            rng: Xoshiro256::new(seed),
            code_sampler,
            shared_sampler,
            private_sampler,
            next_core: 0,
        }
    }

    /// The profile this generator follows.
    #[must_use]
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Number of simulated cores.
    #[must_use]
    pub fn num_cores(&self) -> usize {
        self.num_cores
    }

    /// Maps a logical block of a region to its byte address: the block's
    /// logical page is placed on a pseudo-random physical frame within the
    /// region (deterministic per region), preserving the block's offset
    /// within the page.
    fn block_address(base: u64, block_index: usize, offset: u64) -> Address {
        let logical_page = block_index as u64 / BLOCKS_PER_PAGE;
        let block_in_page = block_index as u64 % BLOCKS_PER_PAGE;
        let frame = SplitMix64::mix(base ^ logical_page.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            & (FRAMES_PER_REGION - 1);
        Address::new(base + frame * PAGE_BYTES + block_in_page * DEFAULT_BLOCK_BYTES + offset)
    }

    /// Generates the next reference.
    pub fn next_ref(&mut self) -> MemRef {
        // Round-robin core interleaving approximates the lock-step progress
        // of a throughput workload while keeping the stream deterministic.
        let core = CoreId::new(self.next_core as u32);
        self.next_core = (self.next_core + 1) % self.num_cores;

        let offset = self.rng.next_below(DEFAULT_BLOCK_BYTES / 8) * 8;

        if self.rng.bernoulli(self.profile.ifetch_fraction) {
            let block = self.code_sampler.sample(&mut self.rng);
            return MemRef::ifetch(core, Self::block_address(CODE_REGION_BASE, block, offset));
        }

        let is_write = self.rng.bernoulli(self.profile.write_fraction);
        let kind = if is_write {
            AccessType::Write
        } else {
            AccessType::Read
        };

        let addr = if self.rng.bernoulli(self.profile.shared_data_fraction) {
            let block = self.shared_sampler.sample(&mut self.rng);
            Self::block_address(SHARED_DATA_BASE, block, offset)
        } else {
            let block = self.private_sampler.sample(&mut self.rng);
            let base = PRIVATE_REGION_BASE + core.index() as u64 * PRIVATE_REGION_SPAN;
            Self::block_address(base, block, offset)
        };
        MemRef::new(core, addr, kind)
    }
}

impl Iterator for TraceGenerator {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        Some(self.next_ref())
    }
}

/// A splittable family of independent trace streams over one workload.
///
/// Parallel sweeps want many *statistically independent* replicas of the
/// same workload — one per seed — whose streams do not depend on how work is
/// distributed across threads.  A `TraceFamily` fixes the `(profile,
/// num_cores, base_seed)` triple once and derives each replica's generator
/// seed with a [`SplitMix64::mix`] of the base seed and the replica index,
/// so replica `k` produces the same stream whether it runs first, last,
/// serially or on any worker thread.
///
/// ```
/// use ccd_workloads::{TraceFamily, WorkloadProfile};
///
/// let family = TraceFamily::new(WorkloadProfile::apache(), 4, 42);
/// let a: Vec<_> = family.replica(0).take(100).collect();
/// let b: Vec<_> = family.replica(1).take(100).collect();
/// assert_ne!(a, b, "replicas are independent streams");
/// assert_eq!(a, family.replica(0).take(100).collect::<Vec<_>>());
/// ```
#[derive(Clone, Debug)]
pub struct TraceFamily {
    profile: WorkloadProfile,
    num_cores: usize,
    base_seed: u64,
}

impl TraceFamily {
    /// Creates a family over `profile` for `num_cores` cores, rooted at
    /// `base_seed`.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is zero or the profile is invalid (same
    /// contract as [`TraceGenerator::new`]).
    #[must_use]
    pub fn new(profile: WorkloadProfile, num_cores: usize, base_seed: u64) -> Self {
        assert!(num_cores > 0, "need at least one core");
        assert!(profile.is_valid(), "invalid workload profile");
        TraceFamily {
            profile,
            num_cores,
            base_seed,
        }
    }

    /// The profile every replica follows.
    #[must_use]
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Number of simulated cores.
    #[must_use]
    pub fn num_cores(&self) -> usize {
        self.num_cores
    }

    /// The seed the family is rooted at.
    #[must_use]
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// The generator seed of replica `index` — a pure function of
    /// `(base_seed, index)`, usable directly where only a seed is needed.
    #[must_use]
    pub fn replica_seed(&self, index: u64) -> u64 {
        derive_seed(self.base_seed, index)
    }

    /// An independent, deterministic trace stream for replica `index`.
    #[must_use]
    pub fn replica(&self, index: u64) -> TraceGenerator {
        TraceGenerator::new(
            self.profile.clone(),
            self.num_cores,
            self.replica_seed(index),
        )
    }
}

/// Derives an independent stream seed from `(base, index)`.
///
/// The SplitMix64 finalizer decorrelates adjacent indices, so seed families
/// built from consecutive integers do not produce correlated Xoshiro
/// states.  Shared by [`TraceFamily`] and the sweep harnesses that need
/// per-cell seeds outside a family.
#[must_use]
pub fn derive_seed(base: u64, index: u64) -> u64 {
    SplitMix64::mix(base ^ index.wrapping_mul(0xA076_1D64_78BD_642F))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn stream_is_deterministic() {
        let a: Vec<_> = TraceGenerator::new(WorkloadProfile::db2(), 8, 1)
            .take(500)
            .collect();
        let b: Vec<_> = TraceGenerator::new(WorkloadProfile::db2(), 8, 1)
            .take(500)
            .collect();
        assert_eq!(a, b);
        let c: Vec<_> = TraceGenerator::new(WorkloadProfile::db2(), 8, 2)
            .take(500)
            .collect();
        assert_ne!(a, c, "different seeds give different traces");
    }

    #[test]
    fn cores_are_interleaved_round_robin() {
        let refs: Vec<_> = TraceGenerator::new(WorkloadProfile::apache(), 4, 3)
            .take(8)
            .collect();
        let cores: Vec<u32> = refs.iter().map(|r| r.core.raw()).collect();
        assert_eq!(cores, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn reference_mix_matches_profile_fractions() {
        let profile = WorkloadProfile::oracle();
        let n = 200_000;
        let refs: Vec<_> = TraceGenerator::new(profile.clone(), 16, 7)
            .take(n)
            .collect();
        let ifetches = refs.iter().filter(|r| r.kind.is_instruction()).count();
        let data: Vec<_> = refs.iter().filter(|r| !r.kind.is_instruction()).collect();
        let writes = data.iter().filter(|r| r.kind.is_write()).count();

        let ifetch_rate = ifetches as f64 / n as f64;
        let write_rate = writes as f64 / data.len() as f64;
        assert!(
            (ifetch_rate - profile.ifetch_fraction).abs() < 0.02,
            "{ifetch_rate}"
        );
        assert!(
            (write_rate - profile.write_fraction).abs() < 0.02,
            "{write_rate}"
        );
    }

    #[test]
    fn private_regions_do_not_overlap_between_cores() {
        let refs: Vec<_> = TraceGenerator::new(WorkloadProfile::ocean(), 16, 5)
            .take(100_000)
            .collect();
        // Every private-region address must fall inside the issuing core's
        // span.
        for r in refs.iter().filter(|r| r.addr.raw() >= PRIVATE_REGION_BASE) {
            let region = (r.addr.raw() - PRIVATE_REGION_BASE) / PRIVATE_REGION_SPAN;
            assert_eq!(region, u64::from(r.core.raw()), "ref {r}");
        }
    }

    #[test]
    fn ocean_touches_mostly_private_blocks() {
        // The calibration property that drives Figure 8's Private-L2 story.
        let refs: Vec<_> = TraceGenerator::new(WorkloadProfile::ocean(), 16, 11)
            .take(100_000)
            .collect();
        let data: Vec<_> = refs.iter().filter(|r| !r.kind.is_instruction()).collect();
        let private = data
            .iter()
            .filter(|r| r.addr.raw() >= PRIVATE_REGION_BASE)
            .count();
        assert!(private as f64 / data.len() as f64 > 0.95);
    }

    #[test]
    fn oltp_touches_many_shared_blocks() {
        let refs: Vec<_> = TraceGenerator::new(WorkloadProfile::db2(), 16, 13)
            .take(100_000)
            .collect();
        let shared_blocks: HashSet<u64> = refs
            .iter()
            .filter(|r| r.addr.raw() >= SHARED_DATA_BASE && r.addr.raw() < PRIVATE_REGION_BASE)
            .map(|r| r.addr.raw() / DEFAULT_BLOCK_BYTES)
            .collect();
        assert!(shared_blocks.len() > 1000, "{}", shared_blocks.len());
    }

    #[test]
    fn addresses_stay_within_their_regions() {
        let profile = WorkloadProfile::zeus();
        let refs: Vec<_> = TraceGenerator::new(profile.clone(), 8, 17)
            .take(50_000)
            .collect();
        let span = FRAMES_PER_REGION * PAGE_BYTES;
        for r in &refs {
            let a = r.addr.raw();
            if r.kind.is_instruction() {
                assert!(a >= CODE_REGION_BASE && a < CODE_REGION_BASE + span);
            } else if a < PRIVATE_REGION_BASE {
                assert!(a >= SHARED_DATA_BASE && a < SHARED_DATA_BASE + span);
            } else {
                let core_region = (a - PRIVATE_REGION_BASE) / PRIVATE_REGION_SPAN;
                assert!(core_region < 8, "private address outside any core's span");
            }
        }
    }

    #[test]
    fn pages_are_scattered_but_block_footprint_is_preserved() {
        // Consecutive logical pages must not land on consecutive frames, yet
        // the number of distinct blocks touched must match the footprint the
        // profile describes (no systematic aliasing).
        let profile = WorkloadProfile::em3d();
        let refs: Vec<_> = TraceGenerator::new(profile.clone(), 4, 23)
            .take(400_000)
            .collect();
        let private_blocks: HashSet<u64> = refs
            .iter()
            .filter(|r| r.addr.raw() >= PRIVATE_REGION_BASE)
            .map(|r| r.addr.raw() / DEFAULT_BLOCK_BYTES)
            .collect();
        // em3d's private accesses are nearly uniform over 32768 blocks/core x
        // 4 cores; with 400k references we should see a large fraction of
        // them and essentially no aliasing collapse.
        assert!(
            private_blocks.len() > 50_000,
            "only {} distinct private blocks",
            private_blocks.len()
        );

        // Scattering: the frames of the first few logical pages of the
        // shared-code region are not consecutive.
        let frame_of = |page: u64| {
            (TraceGenerator::block_address(CODE_REGION_BASE, (page * BLOCKS_PER_PAGE) as usize, 0)
                .raw()
                - CODE_REGION_BASE)
                / PAGE_BYTES
        };
        let frames: Vec<u64> = (0..8).map(frame_of).collect();
        let consecutive = frames.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(
            consecutive <= 1,
            "pages should be scattered, got frames {frames:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = TraceGenerator::new(WorkloadProfile::db2(), 0, 1);
    }

    #[test]
    fn trace_family_replicas_are_independent_and_reproducible() {
        let family = TraceFamily::new(WorkloadProfile::oracle(), 8, 0xBEEF);
        let r0: Vec<_> = family.replica(0).take(300).collect();
        let r1: Vec<_> = family.replica(1).take(300).collect();
        assert_ne!(r0, r1, "different replicas differ");
        assert_eq!(r0, family.replica(0).take(300).collect::<Vec<_>>());

        // Replica k is a plain TraceGenerator with the derived seed, so the
        // family adds no hidden state.
        let direct: Vec<_> =
            TraceGenerator::new(WorkloadProfile::oracle(), 8, family.replica_seed(1))
                .take(300)
                .collect();
        assert_eq!(r1, direct);

        // Adjacent indices decorrelate: derived seeds are far apart.
        assert_ne!(family.replica_seed(0), family.replica_seed(1));
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }
}
