//! Named, parameterized sharing-pattern scenario families.
//!
//! The paper's nine calibrated [`WorkloadProfile`](crate::WorkloadProfile)
//! presets all drive the directories through the *same* two-region access
//! model; they vary footprints and mixes but not the *shape* of sharing.
//! This module grows the workload layer into a library of classic sharing
//! patterns from the coherence literature, each a [`WorkloadFamily`] with
//! its own knobs:
//!
//! | family       | pattern                                                 |
//! |--------------|---------------------------------------------------------|
//! | `readmostly` | Zipf-skewed shared reads with a small write fraction    |
//! | `prodcons`   | producer writes a buffer, consumers read it, rotate     |
//! | `migratory`  | read–modify–write lines whose owner migrates per epoch  |
//! | `falseshare` | cores write disjoint bytes of the same small hot set    |
//! | `stream`     | per-core sequential streaming scans with low reuse      |
//!
//! Families are selected from a compact spec string mirroring the
//! directory-spec grammar (see [`ScenarioSpec`]):
//!
//! ```
//! use ccd_workloads::ScenarioSpec;
//!
//! let spec: ScenarioSpec = "migratory-16c-zipf0.9".parse().unwrap();
//! assert_eq!(spec.family, "migratory");
//! assert_eq!(spec.params.cores, Some(16));
//! assert_eq!(spec.params.zipf, 0.9);
//! let refs: Vec<_> = spec.stream(16, 42).unwrap().take(100).collect();
//! assert_eq!(refs.len(), 100);
//! ```
//!
//! Every stream is deterministic per `(spec, num_cores, seed)`; replica
//! streams for parallel sweeps derive their seeds through the same
//! [`derive_seed`](crate::derive_seed) splitting the
//! [`TraceFamily`](crate::TraceFamily) uses.

use crate::generator::{PRIVATE_REGION_BASE, PRIVATE_REGION_SPAN};
use crate::ZipfSampler;
use ccd_common::rng::{Rng64, SplitMix64, Xoshiro256};
use ccd_common::{AccessType, Address, ConfigError, CoreId, MemRef, DEFAULT_BLOCK_BYTES};
use std::fmt;
use std::str::FromStr;

/// Base byte address of the shared region the scenario families access.
///
/// Sits between the profile generators' shared-data region
/// (`0x0200_…`) and the per-core private regions (`0x0400_…`), so scenario
/// and profile traces can never alias each other.
pub const SCENARIO_REGION_BASE: u64 = 0x0300_0000_0000;

/// A boxed, sendable memory-reference stream.
///
/// Implemented by every iterator of [`MemRef`]s that is `Send` and `Debug`;
/// the scenario families and the trace replayer all hand their streams out
/// behind this trait so the simulator can drive any of them uniformly.
pub trait TraceStream: Iterator<Item = MemRef> + Send + fmt::Debug {}
impl<T: Iterator<Item = MemRef> + Send + fmt::Debug> TraceStream for T {}

/// The tunable knobs shared by all scenario families.
///
/// Each family interprets only the knobs that make sense for it (see the
/// family docs) and supplies its own defaults via
/// [`WorkloadFamily::defaults`]; the spec-string parser overrides
/// individual knobs on top of those defaults.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioParams {
    /// Pinned core count (`-Nc`).  `None` means "use the core count the
    /// simulator's system configuration supplies"; a pinned value must
    /// *match* that count or [`ScenarioSpec::stream`] fails loudly.
    pub cores: Option<usize>,
    /// Footprint in cache lines (`-bN`); per-core for `stream`, shared for
    /// the other families.
    pub blocks: usize,
    /// Zipf skew of line selection (`-zipfF`); `0` is uniform.
    pub zipf: f64,
    /// Fraction of references that are writes (`-wF`), for families with a
    /// probabilistic read/write mix.
    pub write_fraction: f64,
    /// Epoch length (`-eN`): buffer lines per producer→consumer handoff,
    /// or line→owner migration interval in read–modify–write pairs.
    pub epoch: usize,
}

impl ScenarioParams {
    fn validate(&self, family: &str) -> Result<(), ConfigError> {
        if self.blocks == 0 {
            return Err(ConfigError::Zero {
                what: "scenario block count",
            });
        }
        if self.epoch == 0 {
            return Err(ConfigError::Zero {
                what: "scenario epoch length",
            });
        }
        if self.cores == Some(0) {
            return Err(ConfigError::Zero {
                what: "scenario core count",
            });
        }
        if !(0.0..=1.0).contains(&self.write_fraction) {
            return Err(ConfigError::Parse {
                what: format!(
                    "workload spec `{family}`: write fraction {} is outside [0, 1]",
                    self.write_fraction
                ),
            });
        }
        if !(self.zipf.is_finite() && self.zipf >= 0.0) {
            return Err(ConfigError::Parse {
                what: format!(
                    "workload spec `{family}`: zipf skew {} must be finite and >= 0",
                    self.zipf
                ),
            });
        }
        Ok(())
    }

    /// Resolves the effective core count against the system-supplied one.
    fn effective_cores(&self, num_cores: usize) -> Result<usize, ConfigError> {
        match self.cores {
            Some(pinned) if pinned != num_cores => Err(ConfigError::Inconsistent {
                what: "scenario spec pins a core count that differs from the system's",
            }),
            Some(pinned) => Ok(pinned),
            None => Ok(num_cores),
        }
    }
}

/// The optional knobs a scenario spec string can set (besides the
/// universal `cores` pin and `blocks` footprint, which every family
/// consumes).
///
/// Families declare which of these they actually read via
/// [`WorkloadFamily::consumed_knobs`]; setting any other knob to a
/// non-default value is rejected at parse/validate time rather than
/// silently ignored, so a sweep cell's label never advertises a parameter
/// that had no effect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScenarioKnob {
    /// Zipf skew of line selection (`-zipfF`).
    Zipf,
    /// Write fraction (`-wF`).
    WriteFraction,
    /// Epoch length (`-eN`).
    Epoch,
}

/// A named, parameterized sharing-pattern generator family.
///
/// A family is a *recipe*: given knobs, a core count and a seed it builds a
/// deterministic, infinite [`TraceStream`].  The five classic families are
/// registered in [`families`]; [`ScenarioSpec`] selects one by name from a
/// parsed spec string.
pub trait WorkloadFamily: fmt::Debug + Send + Sync {
    /// Family name as it appears in spec strings (e.g. `"migratory"`).
    fn name(&self) -> &'static str;

    /// One-line description of the sharing pattern, for catalogs and CLIs.
    fn describe(&self) -> &'static str;

    /// The family's default knob values.
    fn defaults(&self) -> ScenarioParams;

    /// The optional knobs this family's generator actually reads.
    fn consumed_knobs(&self) -> &'static [ScenarioKnob];

    /// Family-specific knob validation, on top of the generic range checks
    /// in [`ScenarioParams`].  The default accepts everything.
    ///
    /// # Errors
    ///
    /// A [`ConfigError`] naming the violated constraint.
    fn validate_params(&self, _params: &ScenarioParams) -> Result<(), ConfigError> {
        Ok(())
    }

    /// Builds the deterministic reference stream.
    ///
    /// The stream is infinite and a pure function of
    /// `(params, num_cores, seed)` — same arguments, same stream, on any
    /// thread.
    fn stream(&self, params: &ScenarioParams, num_cores: usize, seed: u64) -> Box<dyn TraceStream>;
}

/// Maps a scenario line index to its byte address in the shared region.
fn shared_line(line: usize) -> Address {
    Address::new(SCENARIO_REGION_BASE + line as u64 * DEFAULT_BLOCK_BYTES)
}

// ---------------------------------------------------------------------------
// readmostly
// ---------------------------------------------------------------------------

/// Zipf-skewed read-mostly sharing: all cores read a common hot set, with a
/// small fraction of writes to the same lines.
///
/// The classic "mostly-read shared data" pattern (lock-free indexes, config
/// tables): directory entries accumulate many sharers and invalidations are
/// rare but hit wide sharer sets when they come.  Knobs: `blocks`, `zipf`,
/// `write_fraction`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReadMostlyFamily;

#[derive(Debug)]
struct ReadMostlyStream {
    rng: Xoshiro256,
    sampler: ZipfSampler,
    write_fraction: f64,
    cores: usize,
    next_core: usize,
}

impl Iterator for ReadMostlyStream {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        let core = CoreId::new(self.next_core as u32);
        self.next_core = (self.next_core + 1) % self.cores;
        let line = self.sampler.sample(&mut self.rng);
        let kind = if self.rng.bernoulli(self.write_fraction) {
            AccessType::Write
        } else {
            AccessType::Read
        };
        Some(MemRef::new(core, shared_line(line), kind))
    }
}

impl WorkloadFamily for ReadMostlyFamily {
    fn consumed_knobs(&self) -> &'static [ScenarioKnob] {
        &[ScenarioKnob::Zipf, ScenarioKnob::WriteFraction]
    }

    fn name(&self) -> &'static str {
        "readmostly"
    }

    fn describe(&self) -> &'static str {
        "Zipf-skewed shared reads with a small write fraction"
    }

    fn defaults(&self) -> ScenarioParams {
        ScenarioParams {
            cores: None,
            blocks: 8_192,
            zipf: 0.9,
            write_fraction: 0.05,
            epoch: 1,
        }
    }

    fn stream(&self, params: &ScenarioParams, num_cores: usize, seed: u64) -> Box<dyn TraceStream> {
        Box::new(ReadMostlyStream {
            rng: Xoshiro256::new(seed),
            sampler: ZipfSampler::new(params.blocks, params.zipf),
            write_fraction: params.write_fraction,
            cores: num_cores,
            next_core: 0,
        })
    }
}

// ---------------------------------------------------------------------------
// prodcons
// ---------------------------------------------------------------------------

/// Producer–consumer handoffs: one core writes a buffer of `epoch` lines,
/// every other core then reads it, and the producer role rotates.
///
/// Models message queues and pipeline stages: each line is written by
/// exactly one core per handoff and then read by all the others, so the
/// directory sees an insert + full-set sharer build-up + invalidate cycle
/// per buffer.  Knobs: `blocks` (ring capacity), `epoch` (buffer lines per
/// handoff).
#[derive(Clone, Copy, Debug, Default)]
pub struct ProducerConsumerFamily;

#[derive(Debug)]
struct ProducerConsumerStream {
    cores: usize,
    blocks: usize,
    epoch: usize,
    /// Index of the current handoff; producer and ring offset derive from it.
    handoff: u64,
    /// Position within the handoff: `0..epoch` writes, then
    /// `epoch..epoch * cores` reads (consumers interleaved per line).
    position: usize,
}

impl Iterator for ProducerConsumerStream {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        let producer = (self.handoff % self.cores as u64) as usize;
        let ring_start = (self.handoff as usize).wrapping_mul(self.epoch) % self.blocks;
        let reads_per_handoff = self.epoch * (self.cores - 1).max(1);

        let r = if self.position < self.epoch {
            // Produce phase: sequential writes.
            let line = (ring_start + self.position) % self.blocks;
            MemRef::write(CoreId::new(producer as u32), shared_line(line))
        } else {
            // Consume phase: for each buffer line, every non-producer core
            // reads it in turn.
            let offset = self.position - self.epoch;
            let line = (ring_start + offset / (self.cores - 1).max(1)) % self.blocks;
            let nth = offset % (self.cores - 1).max(1);
            // The nth consumer, skipping the producer.
            let consumer = (producer + 1 + nth) % self.cores;
            MemRef::read(CoreId::new(consumer as u32), shared_line(line))
        };

        self.position += 1;
        if self.position >= self.epoch + reads_per_handoff {
            self.position = 0;
            self.handoff += 1;
        }
        Some(r)
    }
}

impl WorkloadFamily for ProducerConsumerFamily {
    fn consumed_knobs(&self) -> &'static [ScenarioKnob] {
        &[ScenarioKnob::Epoch]
    }

    fn name(&self) -> &'static str {
        "prodcons"
    }

    fn describe(&self) -> &'static str {
        "producer writes a buffer of lines, all consumers read it, role rotates"
    }

    fn defaults(&self) -> ScenarioParams {
        // The ring must stay resident in the paper's 64 KB L1s (1024
        // lines) between handoffs, or the producer's rewrites find no
        // sharers left to invalidate and the pattern degenerates into a
        // streaming scan.
        ScenarioParams {
            cores: None,
            blocks: 512,
            zipf: 0.0,
            write_fraction: 0.0,
            epoch: 64,
        }
    }

    fn validate_params(&self, params: &ScenarioParams) -> Result<(), ConfigError> {
        // Rejected rather than clamped: a clamped epoch would leave sweep
        // cells labelled with knob values that never ran.
        if params.epoch > params.blocks {
            return Err(ConfigError::Inconsistent {
                what: "prodcons buffer (epoch) cannot exceed the ring capacity (blocks)",
            });
        }
        Ok(())
    }

    fn stream(&self, params: &ScenarioParams, num_cores: usize, seed: u64) -> Box<dyn TraceStream> {
        Box::new(ProducerConsumerStream {
            cores: num_cores,
            blocks: params.blocks,
            epoch: params.epoch,
            // The seed shifts the starting producer and ring offset, so
            // replicas exercise different alignments of the same pattern.
            handoff: SplitMix64::mix(seed) >> 16,
            position: 0,
        })
    }
}

// ---------------------------------------------------------------------------
// migratory
// ---------------------------------------------------------------------------

/// Migratory sharing: lines are accessed read-then-write by one core at a
/// time, and the owning core migrates every `epoch` pairs.
///
/// The textbook migratory pattern (objects bounced between threads through
/// locks): at any time each line has at most one active sharer, so the
/// directory sees a steady churn of exclusive handoffs and its occupancy
/// stays near the unique-block worst case.  Knobs: `blocks`, `zipf`
/// (line popularity), `epoch` (pairs between ownership migrations).
#[derive(Clone, Copy, Debug, Default)]
pub struct MigratoryFamily;

#[derive(Debug)]
struct MigratoryStream {
    rng: Xoshiro256,
    sampler: ZipfSampler,
    cores: usize,
    epoch: usize,
    seed: u64,
    /// Read–modify–write pairs completed so far; `pairs / epoch` is the
    /// current ownership epoch.
    pairs: u64,
    /// The write half of the pair still to be emitted.
    pending_write: Option<MemRef>,
}

impl MigratoryStream {
    /// The owner of `line` during `epoch` — a pure hash of
    /// `(seed, line, epoch)`, so ownership is stable within an epoch and
    /// migrates (pseudo-randomly) across epochs.
    fn owner(&self, line: usize, epoch: u64) -> CoreId {
        let mixed = SplitMix64::mix(
            self.seed
                ^ (line as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ epoch.wrapping_mul(0xA076_1D64_78BD_642F),
        );
        CoreId::new((mixed % self.cores as u64) as u32)
    }
}

impl Iterator for MigratoryStream {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        if let Some(write) = self.pending_write.take() {
            self.pairs += 1;
            return Some(write);
        }
        let line = self.sampler.sample(&mut self.rng);
        let epoch = self.pairs / self.epoch as u64;
        let owner = self.owner(line, epoch);
        let addr = shared_line(line);
        self.pending_write = Some(MemRef::write(owner, addr));
        Some(MemRef::read(owner, addr))
    }
}

impl WorkloadFamily for MigratoryFamily {
    fn consumed_knobs(&self) -> &'static [ScenarioKnob] {
        &[ScenarioKnob::Zipf, ScenarioKnob::Epoch]
    }

    fn name(&self) -> &'static str {
        "migratory"
    }

    fn describe(&self) -> &'static str {
        "read-modify-write lines whose single owner migrates between epochs"
    }

    fn defaults(&self) -> ScenarioParams {
        ScenarioParams {
            cores: None,
            blocks: 4_096,
            zipf: 0.6,
            write_fraction: 1.0,
            epoch: 512,
        }
    }

    fn stream(&self, params: &ScenarioParams, num_cores: usize, seed: u64) -> Box<dyn TraceStream> {
        Box::new(MigratoryStream {
            rng: Xoshiro256::new(seed),
            sampler: ZipfSampler::new(params.blocks, params.zipf),
            cores: num_cores,
            epoch: params.epoch,
            seed,
            pairs: 0,
            pending_write: None,
        })
    }
}

// ---------------------------------------------------------------------------
// falseshare
// ---------------------------------------------------------------------------

/// False sharing: cores write *disjoint bytes* of the same small set of hot
/// lines, so the block-granular directory sees furious write sharing that
/// the program never asked for.
///
/// The degenerate pattern that stresses invalidation machinery: a tiny
/// footprint (`blocks` lines) absorbs the whole reference stream and every
/// write invalidates whoever touched the line last.  Slot widths scale
/// with the core count (8 B up to 8 cores, 4 B up to 16, … 1 B up to 64)
/// so every core keeps disjoint bytes; past 64 cores a 64-byte line cannot
/// hold disjoint slots and cores 64 apart alias.  Knobs: `blocks`, `zipf`,
/// `write_fraction`.
#[derive(Clone, Copy, Debug, Default)]
pub struct FalseSharingFamily;

#[derive(Debug)]
struct FalseSharingStream {
    rng: Xoshiro256,
    sampler: ZipfSampler,
    write_fraction: f64,
    cores: usize,
    next_core: usize,
    /// Width of each core's private byte slot within a line, sized so up
    /// to 64 cores get disjoint slots (see [`FalseSharingFamily`]).
    slot_bytes: u64,
}

impl Iterator for FalseSharingStream {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        let core = self.next_core;
        self.next_core = (self.next_core + 1) % self.cores;
        let line = self.sampler.sample(&mut self.rng);
        // Each core owns a distinct slot within the line; the directory
        // cannot see the distinction — that is the point.
        let slots = DEFAULT_BLOCK_BYTES / self.slot_bytes;
        let slot = (core as u64 % slots) * self.slot_bytes;
        let addr = Address::new(shared_line(line).raw() + slot);
        let kind = if self.rng.bernoulli(self.write_fraction) {
            AccessType::Write
        } else {
            AccessType::Read
        };
        Some(MemRef::new(CoreId::new(core as u32), addr, kind))
    }
}

impl WorkloadFamily for FalseSharingFamily {
    fn consumed_knobs(&self) -> &'static [ScenarioKnob] {
        &[ScenarioKnob::Zipf, ScenarioKnob::WriteFraction]
    }

    fn name(&self) -> &'static str {
        "falseshare"
    }

    fn describe(&self) -> &'static str {
        "cores write disjoint bytes of the same small hot set of lines"
    }

    fn defaults(&self) -> ScenarioParams {
        ScenarioParams {
            cores: None,
            blocks: 64,
            zipf: 0.5,
            write_fraction: 0.5,
            epoch: 1,
        }
    }

    fn stream(&self, params: &ScenarioParams, num_cores: usize, seed: u64) -> Box<dyn TraceStream> {
        // The widest slot that still gives every core its own bytes: 8 B
        // up to 8 cores, 4 B up to 16, … 1 B up to 64.  Beyond 64 cores a
        // 64-byte line cannot hold disjoint slots, so cores 64 apart
        // legitimately alias (the sharing is then real, not false).
        let slot_bytes = (DEFAULT_BLOCK_BYTES / num_cores.next_power_of_two() as u64).clamp(1, 8);
        Box::new(FalseSharingStream {
            rng: Xoshiro256::new(seed),
            sampler: ZipfSampler::new(params.blocks, params.zipf),
            write_fraction: params.write_fraction,
            cores: num_cores,
            next_core: 0,
            slot_bytes,
        })
    }
}

// ---------------------------------------------------------------------------
// stream
// ---------------------------------------------------------------------------

/// Streaming scans: each core sweeps sequentially through its own large
/// private region with essentially no reuse until it wraps.
///
/// Models `memcpy`-like kernels and column scans: the directory sees a
/// steady stream of insert + evict with singleton sharer sets — maximum
/// insertion pressure, minimum sharing.  Knobs: `blocks` (lines *per
/// core*), `write_fraction`.
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamingScanFamily;

#[derive(Debug)]
struct StreamingScanStream {
    rng: Xoshiro256,
    write_fraction: f64,
    blocks: usize,
    cursors: Vec<usize>,
    next_core: usize,
}

impl Iterator for StreamingScanStream {
    type Item = MemRef;

    fn next(&mut self) -> Option<MemRef> {
        let core = self.next_core;
        self.next_core = (self.next_core + 1) % self.cursors.len();
        let cursor = self.cursors[core];
        self.cursors[core] = (cursor + 1) % self.blocks;
        let base = PRIVATE_REGION_BASE + core as u64 * PRIVATE_REGION_SPAN;
        let addr = Address::new(base + cursor as u64 * DEFAULT_BLOCK_BYTES);
        let kind = if self.rng.bernoulli(self.write_fraction) {
            AccessType::Write
        } else {
            AccessType::Read
        };
        Some(MemRef::new(CoreId::new(core as u32), addr, kind))
    }
}

impl WorkloadFamily for StreamingScanFamily {
    fn consumed_knobs(&self) -> &'static [ScenarioKnob] {
        &[ScenarioKnob::WriteFraction]
    }

    fn name(&self) -> &'static str {
        "stream"
    }

    fn describe(&self) -> &'static str {
        "per-core sequential streaming scans with low reuse"
    }

    fn defaults(&self) -> ScenarioParams {
        ScenarioParams {
            cores: None,
            blocks: 32_768,
            zipf: 0.0,
            write_fraction: 0.1,
            epoch: 1,
        }
    }

    fn validate_params(&self, params: &ScenarioParams) -> Result<(), ConfigError> {
        // Each core's scan must stay inside its own private region, or the
        // "no sharing" premise of the family silently breaks.
        let max_blocks = (PRIVATE_REGION_SPAN / DEFAULT_BLOCK_BYTES) as usize;
        if params.blocks > max_blocks {
            return Err(ConfigError::TooLarge {
                what: "stream per-core block count (would overflow the private region)",
                value: params.blocks as u64,
                max: max_blocks as u64,
            });
        }
        Ok(())
    }

    fn stream(&self, params: &ScenarioParams, num_cores: usize, seed: u64) -> Box<dyn TraceStream> {
        // Seed-derived starting offsets decorrelate replicas without
        // breaking the sequential-scan property.
        let cursors = (0..num_cores)
            .map(|core| (SplitMix64::mix(seed ^ core as u64) % params.blocks as u64) as usize)
            .collect();
        Box::new(StreamingScanStream {
            rng: Xoshiro256::new(seed),
            write_fraction: params.write_fraction,
            blocks: params.blocks,
            cursors,
            next_core: 0,
        })
    }
}

// ---------------------------------------------------------------------------
// registry + spec strings
// ---------------------------------------------------------------------------

/// The five registered scenario families, in catalog order.
#[must_use]
pub fn families() -> &'static [&'static dyn WorkloadFamily] {
    &[
        &ReadMostlyFamily,
        &ProducerConsumerFamily,
        &MigratoryFamily,
        &FalseSharingFamily,
        &StreamingScanFamily,
    ]
}

/// Looks a family up by its spec-string name.
#[must_use]
pub fn family_by_name(name: &str) -> Option<&'static dyn WorkloadFamily> {
    families().iter().copied().find(|f| f.name() == name)
}

/// A parsed scenario specification: a family name plus its knob values.
///
/// # Spec-string grammar
///
/// ```text
/// FAMILY[-Nc][-bBLOCKS][-zipfSKEW][-wWRITES][-eEPOCH]
/// ```
///
/// * `FAMILY` — `readmostly`, `prodcons`, `migratory`, `falseshare`,
///   `stream`;
/// * `Nc` — pin the core count (must match the simulated system's);
/// * `bBLOCKS` — footprint in cache lines;
/// * `zipfSKEW` — Zipf skew of line selection (`zipf0` = uniform);
/// * `wWRITES` — write fraction in `[0, 1]`;
/// * `eEPOCH` — epoch length (see [`ScenarioParams::epoch`]).
///
/// Knobs not named in the string keep the family's defaults.  [`Display`]
/// prints the canonical form (family plus the non-default knobs), which
/// re-parses to an equal spec.
///
/// ```
/// use ccd_workloads::ScenarioSpec;
///
/// let spec: ScenarioSpec = "falseshare-b128-w0.8".parse().unwrap();
/// assert_eq!(spec.params.blocks, 128);
/// assert_eq!(spec.to_string(), "falseshare-b128-w0.8");
/// assert_eq!(spec.to_string().parse::<ScenarioSpec>().unwrap(), spec);
///
/// // Errors name the offending token:
/// let err = "migratory-q7".parse::<ScenarioSpec>().unwrap_err();
/// assert!(err.to_string().contains("`q7`"));
/// ```
///
/// [`Display`]: std::fmt::Display
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioSpec {
    /// Family name (a key into [`families`]).
    pub family: String,
    /// Knob values (family defaults overridden by the spec string).
    pub params: ScenarioParams,
}

impl ScenarioSpec {
    /// A spec for `family` with all knobs at the family's defaults.
    ///
    /// # Errors
    ///
    /// [`ConfigError::Parse`] when `family` names no registered family.
    pub fn new(family: &str) -> Result<Self, ConfigError> {
        let f = family_by_name(family).ok_or_else(|| ConfigError::Parse {
            what: format!(
                "unknown workload family `{family}` (known: {})",
                known_family_names()
            ),
        })?;
        Ok(ScenarioSpec {
            family: f.name().to_string(),
            params: f.defaults(),
        })
    }

    /// The family this spec selects.
    ///
    /// # Panics
    ///
    /// Never panics for specs produced by [`ScenarioSpec::new`] or parsing;
    /// panics if `family` was manually set to an unregistered name.
    #[must_use]
    pub fn family(&self) -> &'static dyn WorkloadFamily {
        family_by_name(&self.family).expect("scenario spec names a registered family")
    }

    /// Rejects knobs set to non-default values that this family's
    /// generator never reads — a label like `prodcons-zipf0.9` must not
    /// run (identically to plain `prodcons`) while advertising a skew.
    fn reject_unconsumed_knobs(
        family: &dyn WorkloadFamily,
        params: &ScenarioParams,
    ) -> Result<(), ConfigError> {
        let defaults = family.defaults();
        let consumed = family.consumed_knobs();
        let offending = [
            (ScenarioKnob::Zipf, "zipf", params.zipf != defaults.zipf),
            (
                ScenarioKnob::WriteFraction,
                "w",
                params.write_fraction != defaults.write_fraction,
            ),
            (ScenarioKnob::Epoch, "e", params.epoch != defaults.epoch),
        ]
        .into_iter()
        .find(|(kind, _, differs)| *differs && !consumed.contains(kind));
        if let Some((_, knob, _)) = offending {
            return Err(ConfigError::Parse {
                what: format!(
                    "workload family `{}` does not use the `{knob}` knob",
                    family.name()
                ),
            });
        }
        Ok(())
    }

    /// Validates the spec for a system with `num_cores` cores without
    /// building anything: family existence, knob ranges and applicability,
    /// core pinning.
    ///
    /// # Errors
    ///
    /// The error [`ScenarioSpec::stream`] would surface.
    pub fn validate(&self, num_cores: usize) -> Result<(), ConfigError> {
        if num_cores == 0 {
            return Err(ConfigError::Zero { what: "core count" });
        }
        let family = family_by_name(&self.family).ok_or_else(|| ConfigError::Parse {
            what: format!(
                "unknown workload family `{}` (known: {})",
                self.family,
                known_family_names()
            ),
        })?;
        self.params.validate(&self.family)?;
        Self::reject_unconsumed_knobs(family, &self.params)?;
        family.validate_params(&self.params)?;
        self.params.effective_cores(num_cores).map(drop)
    }

    /// Builds the deterministic reference stream for this spec.
    ///
    /// # Errors
    ///
    /// Rejects invalid knob values and a pinned core count that differs
    /// from `num_cores`.
    pub fn stream(&self, num_cores: usize, seed: u64) -> Result<Box<dyn TraceStream>, ConfigError> {
        self.validate(num_cores)?;
        let family = family_by_name(&self.family).ok_or_else(|| ConfigError::Parse {
            what: format!(
                "unknown workload family `{}` (known: {})",
                self.family,
                known_family_names()
            ),
        })?;
        let cores = self.params.effective_cores(num_cores)?;
        Ok(family.stream(&self.params, cores, seed))
    }
}

fn known_family_names() -> String {
    families()
        .iter()
        .map(|f| f.name())
        .collect::<Vec<_>>()
        .join(", ")
}

impl FromStr for ScenarioSpec {
    type Err = ConfigError;

    fn from_str(input: &str) -> Result<Self, ConfigError> {
        let input = input.trim();
        let mut tokens = input.split('-');
        let family_token = tokens.next().unwrap_or_default();
        let mut spec = ScenarioSpec::new(family_token).map_err(|_| ConfigError::Parse {
            what: format!(
                "workload spec `{input}`: unknown family `{family_token}` (known: {})",
                known_family_names()
            ),
        })?;
        for token in tokens {
            spec.apply_knob(input, token)?;
        }
        spec.params.validate(&spec.family)?;
        ScenarioSpec::reject_unconsumed_knobs(spec.family(), &spec.params)?;
        spec.family().validate_params(&spec.params)?;
        Ok(spec)
    }
}

impl ScenarioSpec {
    /// Applies one `-`-separated knob token, naming it in any error.
    fn apply_knob(&mut self, input: &str, token: &str) -> Result<(), ConfigError> {
        let bad = |why: &str| ConfigError::Parse {
            what: format!("workload spec `{input}`: {why} in token `{token}`"),
        };
        if let Some(count) = token.strip_suffix('c') {
            if let Ok(cores) = count.parse::<usize>() {
                self.params.cores = Some(cores);
                return Ok(());
            }
        }
        if let Some(rest) = token.strip_prefix("zipf") {
            self.params.zipf = rest.parse().map_err(|_| bad("invalid zipf skew"))?;
            return Ok(());
        }
        if let Some(rest) = token.strip_prefix('b') {
            self.params.blocks = rest.parse().map_err(|_| bad("invalid block count"))?;
            return Ok(());
        }
        if let Some(rest) = token.strip_prefix('w') {
            self.params.write_fraction = rest.parse().map_err(|_| bad("invalid write fraction"))?;
            return Ok(());
        }
        if let Some(rest) = token.strip_prefix('e') {
            self.params.epoch = rest.parse().map_err(|_| bad("invalid epoch length"))?;
            return Ok(());
        }
        Err(ConfigError::Parse {
            what: format!(
                "workload spec `{input}`: unknown knob `{token}` (expected Nc, bN, zipfF, wF or eN)"
            ),
        })
    }
}

impl fmt::Display for ScenarioSpec {
    /// Prints the canonical spec string: family name plus every knob that
    /// differs from the family default, in grammar order.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let defaults = self.family().defaults();
        write!(f, "{}", self.family)?;
        if let Some(cores) = self.params.cores {
            write!(f, "-{cores}c")?;
        }
        if self.params.blocks != defaults.blocks {
            write!(f, "-b{}", self.params.blocks)?;
        }
        if self.params.zipf != defaults.zipf {
            write!(f, "-zipf{}", self.params.zipf)?;
        }
        if self.params.write_fraction != defaults.write_fraction {
            write!(f, "-w{}", self.params.write_fraction)?;
        }
        if self.params.epoch != defaults.epoch {
            write!(f, "-e{}", self.params.epoch)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet};

    fn take(spec: &str, cores: usize, seed: u64, n: usize) -> Vec<MemRef> {
        spec.parse::<ScenarioSpec>()
            .unwrap()
            .stream(cores, seed)
            .unwrap()
            .take(n)
            .collect()
    }

    #[test]
    fn registry_has_five_distinct_families() {
        let names: HashSet<_> = families().iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), 5);
        assert!(family_by_name("migratory").is_some());
        assert!(family_by_name("nope").is_none());
        for family in families() {
            assert!(!family.describe().is_empty());
        }
    }

    #[test]
    fn every_family_is_deterministic_and_seed_sensitive() {
        for family in families() {
            let spec = ScenarioSpec::new(family.name()).unwrap();
            let a: Vec<_> = spec.stream(8, 1).unwrap().take(2_000).collect();
            let b: Vec<_> = spec.stream(8, 1).unwrap().take(2_000).collect();
            assert_eq!(a, b, "{} must be deterministic", family.name());
            let c: Vec<_> = spec.stream(8, 2).unwrap().take(2_000).collect();
            assert_ne!(a, c, "{} must vary with the seed", family.name());
        }
    }

    #[test]
    fn spec_strings_round_trip_and_reject_garbage() {
        for input in [
            "readmostly",
            "migratory-16c-zipf0.9",
            "falseshare-b128-w0.8",
            "prodcons-b4096-e32",
            "stream-b1024-w0.25",
        ] {
            let spec: ScenarioSpec = input.parse().unwrap();
            assert_eq!(spec.to_string(), input, "canonical form");
            let reparsed: ScenarioSpec = spec.to_string().parse().unwrap();
            assert_eq!(reparsed, spec);
        }

        // Errors name the offending token or family.
        let err = "martian-b64".parse::<ScenarioSpec>().unwrap_err();
        assert!(err.to_string().contains("`martian`"), "{err}");
        let err = "migratory-q7".parse::<ScenarioSpec>().unwrap_err();
        assert!(err.to_string().contains("`q7`"), "{err}");
        let err = "migratory-zipfx".parse::<ScenarioSpec>().unwrap_err();
        assert!(err.to_string().contains("`zipfx`"), "{err}");
        assert!("readmostly-b0".parse::<ScenarioSpec>().is_err());
        assert!("readmostly-w1.5".parse::<ScenarioSpec>().is_err());
        assert!("prodcons-e0".parse::<ScenarioSpec>().is_err());
        assert!("readmostly-zipf-1".parse::<ScenarioSpec>().is_err());

        // Family-specific constraints are rejected, not silently clamped:
        // a prodcons buffer larger than its ring, or a streaming scan that
        // would overflow its per-core private region.
        assert!("prodcons-b16-e64".parse::<ScenarioSpec>().is_err());
        assert!("stream-b8388608".parse::<ScenarioSpec>().is_err());
        assert!("stream-b4194304".parse::<ScenarioSpec>().is_ok());

        // Knobs a family never reads are rejected, not silently ignored —
        // a cell label must never advertise a parameter that had no
        // effect.
        let err = "prodcons-zipf0.9".parse::<ScenarioSpec>().unwrap_err();
        assert!(err.to_string().contains("`zipf`"), "{err}");
        assert!("migratory-w0.5".parse::<ScenarioSpec>().is_err());
        assert!("stream-e128".parse::<ScenarioSpec>().is_err());
        assert!("readmostly-e8".parse::<ScenarioSpec>().is_err());
        assert!("falseshare-e8".parse::<ScenarioSpec>().is_err());
    }

    #[test]
    fn pinned_core_counts_must_match_the_system() {
        let spec: ScenarioSpec = "migratory-16c".parse().unwrap();
        assert!(spec.stream(16, 1).is_ok());
        assert!(spec.stream(8, 1).is_err());
        let unpinned: ScenarioSpec = "migratory".parse().unwrap();
        assert!(unpinned.stream(8, 1).is_ok());
        assert!(unpinned.stream(32, 1).is_ok());
    }

    #[test]
    fn readmostly_matches_its_write_fraction_and_footprint() {
        let refs = take("readmostly-b512-w0.2", 8, 3, 50_000);
        let writes = refs.iter().filter(|r| r.kind.is_write()).count();
        let rate = writes as f64 / refs.len() as f64;
        assert!((rate - 0.2).abs() < 0.02, "{rate}");
        let lines: HashSet<u64> = refs.iter().map(|r| r.addr.raw() / 64).collect();
        assert!(lines.len() <= 512);
        assert!(lines.len() > 256, "zipf tail should still be touched");
        for r in &refs {
            assert!(r.addr.raw() >= SCENARIO_REGION_BASE);
            assert!(r.addr.raw() < PRIVATE_REGION_BASE);
        }
    }

    #[test]
    fn prodcons_lines_are_written_once_then_read_by_all_others() {
        let cores = 4;
        let epoch = 8;
        // One full handoff = epoch writes + epoch * (cores-1) reads.
        let handoff_len = epoch * cores;
        let refs = take("prodcons-b64-e8", cores, 9, 5 * handoff_len);
        for handoff in refs.chunks(handoff_len) {
            let (writes, reads) = handoff.split_at(epoch);
            let producer = writes[0].core;
            assert!(writes
                .iter()
                .all(|r| r.kind.is_write() && r.core == producer));
            let written: HashSet<u64> = writes.iter().map(|r| r.addr.raw()).collect();
            assert_eq!(written.len(), epoch, "distinct buffer lines");
            for r in reads {
                assert!(!r.kind.is_write());
                assert_ne!(r.core, producer, "producer never reads its own handoff");
                assert!(written.contains(&r.addr.raw()), "consumers read the buffer");
            }
            // Every consumer reads every line exactly once.
            let mut per_core: HashMap<u32, usize> = HashMap::new();
            for r in reads {
                *per_core.entry(r.core.raw()).or_default() += 1;
            }
            assert_eq!(per_core.len(), cores - 1);
            assert!(per_core.values().all(|&n| n == epoch));
        }
    }

    #[test]
    fn migratory_lines_have_at_most_one_active_core_per_epoch() {
        let epoch = 32;
        let refs = take("migratory-b256-e32-zipf0.4", 8, 5, 40_000);
        // Refs come in read+write pairs by the same core; group by
        // (epoch, line) and check a single core touches each.
        let mut owner_of: HashMap<(u64, u64), u32> = HashMap::new();
        for (pair_index, pair) in refs.chunks(2).enumerate() {
            assert_eq!(pair.len(), 2);
            assert!(!pair[0].kind.is_write() && pair[1].kind.is_write());
            assert_eq!(pair[0].core, pair[1].core, "pair is one core's RMW");
            assert_eq!(pair[0].addr, pair[1].addr);
            let e = pair_index as u64 / epoch as u64;
            let line = pair[0].addr.raw() / 64;
            let owner = owner_of.entry((e, line)).or_insert(pair[0].core.raw());
            assert_eq!(
                *owner,
                pair[0].core.raw(),
                "line {line} must have one owner within epoch {e}"
            );
        }
        // Ownership actually migrates across epochs for at least one line.
        let migrated = owner_of
            .iter()
            .any(|(&(e, line), &core)| owner_of.get(&(e + 1, line)).is_some_and(|&c| c != core));
        assert!(migrated, "owners must migrate across epochs");
    }

    #[test]
    fn falseshare_cores_hit_the_same_lines_at_disjoint_bytes() {
        let refs = take("falseshare-b16", 8, 11, 20_000);
        let lines: HashSet<u64> = refs.iter().map(|r| r.addr.raw() / 64).collect();
        assert!(lines.len() <= 16, "footprint stays inside the hot set");
        // Several cores write the same line (that is the false sharing)...
        let mut writers_of: HashMap<u64, HashSet<u32>> = HashMap::new();
        for r in refs.iter().filter(|r| r.kind.is_write()) {
            writers_of
                .entry(r.addr.raw() / 64)
                .or_default()
                .insert(r.core.raw());
        }
        assert!(writers_of.values().any(|w| w.len() >= 4));
        // ...but every core touches its own byte slot.
        for r in &refs {
            assert_eq!(r.addr.raw() % 8, 0);
            assert_eq!((r.addr.raw() % 64) / 8, u64::from(r.core.raw()) % 8);
        }

        // Slots shrink with the core count so they stay disjoint: with 16
        // cores each gets its own 4-byte slot.
        let refs16 = take("falseshare-b16", 16, 11, 20_000);
        let mut slot_of: HashMap<u32, u64> = HashMap::new();
        for r in &refs16 {
            let slot = (r.addr.raw() % 64) / 4;
            assert_eq!(*slot_of.entry(r.core.raw()).or_insert(slot), slot);
        }
        let distinct: HashSet<u64> = slot_of.values().copied().collect();
        assert_eq!(distinct.len(), 16, "16 cores, 16 disjoint 4-byte slots");
    }

    #[test]
    fn stream_scans_are_sequential_per_core_with_low_reuse() {
        let blocks = 1_024;
        let refs = take("stream-b1024", 4, 13, 4 * blocks);
        let mut last: HashMap<u32, u64> = HashMap::new();
        let mut per_core_lines: HashMap<u32, HashSet<u64>> = HashMap::new();
        for r in &refs {
            let line = r.addr.raw() / 64;
            if let Some(&prev) = last.get(&r.core.raw()) {
                let base = prev - (prev % blocks as u64);
                let next = base + (prev + 1) % blocks as u64;
                assert_eq!(line, next, "core {} scans sequentially", r.core);
            }
            last.insert(r.core.raw(), line);
            per_core_lines.entry(r.core.raw()).or_default().insert(line);
        }
        // Each core touched every line of its region exactly once (no reuse
        // within one wrap), and regions are disjoint across cores.
        for lines in per_core_lines.values() {
            assert_eq!(lines.len(), blocks);
        }
        let all: HashSet<u64> = per_core_lines.values().flatten().copied().collect();
        assert_eq!(all.len(), 4 * blocks, "per-core regions are disjoint");
    }
}
