//! A miniature version of the paper's Figure 12 for one workload class:
//! compare the forced-invalidation behaviour of Sparse, Skewed and Cuckoo
//! directories under an OLTP-like workload on the 16-core Shared-L2 system.
//!
//! Run with: `cargo run --release --example oltp_invalidation_study`

use cuckoo_directory::prelude::*;

fn run(spec: &DirectorySpec, profile: &WorkloadProfile) -> SimReport {
    let system = SystemConfig::table1(Hierarchy::SharedL2);
    let mut trace = TraceGenerator::new(profile.clone(), system.num_cores, 0x01f);
    let warmup = 600_000;
    let measure = 400_000;
    CmpSimulator::run_workload(system, spec, &mut trace, warmup, measure)
        .expect("valid configuration")
}

fn main() {
    let profile = WorkloadProfile::oracle();
    println!("OLTP Oracle on the 16-core Shared-L2 system (Table 1 parameters)\n");

    let candidates = [
        DirectorySpec::sparse(8, 1.0),
        DirectorySpec::sparse(8, 2.0),
        DirectorySpec::sparse(8, 8.0),
        DirectorySpec::skewed(4, 2.0),
        DirectorySpec::cuckoo(4, 1.0),
    ];

    println!(
        "{:<22} {:>12} {:>14} {:>18} {:>14}",
        "organization", "capacity", "occupancy %", "forced inval. %", "avg attempts"
    );
    for spec in &candidates {
        let report = run(spec, &profile);
        let system = SystemConfig::table1(Hierarchy::SharedL2);
        let capacity =
            spec.build_slice(&system).expect("valid spec").capacity() * system.num_slices();
        println!(
            "{:<22} {:>12} {:>14.1} {:>18.4} {:>14.2}",
            spec.label(),
            capacity,
            report.avg_directory_occupancy * 100.0,
            report.forced_invalidation_rate() * 100.0,
            report.avg_insertion_attempts(),
        );
    }

    println!(
        "\nThe Cuckoo directory matches or beats the 8x over-provisioned Sparse directory's\n\
         invalidation behaviour with one eighth of its capacity — the paper's core result."
    );
}
