//! Quickstart: build a Cuckoo directory, drive it by hand, then run a small
//! simulated CMP on top of it.
//!
//! Run with: `cargo run --release --example quickstart`

use cuckoo_directory::directory::{DirectoryOp, Outcome};
use cuckoo_directory::prelude::*;

fn main() -> Result<(), ccd_common::ConfigError> {
    // --- 1. The Cuckoo directory as a standalone data structure -----------
    //
    // A 4-way x 512-set slice tracking 32 private caches: the configuration
    // the paper selects for its 16-core Shared-L2 system (1x provisioning).
    // Any of the six organizations can be built at runtime from a spec
    // string through the builder registry.
    let registry = cuckoo_directory::cuckoo::standard_registry();
    let mut dir = registry.build_str("cuckoo-4x512-skew")?;

    // The hot path: one reusable outcome buffer, zero steady-state
    // allocations per operation.
    let mut out = Outcome::new();
    let block = LineAddr::from_block_number(0x00ab_cdef);
    for cache in [0u32, 5, 17] {
        dir.apply(
            DirectoryOp::AddSharer {
                line: block,
                cache: CacheId::new(cache),
            },
            &mut out,
        );
        println!(
            "add sharer cache{cache}: new entry = {}, attempts = {}",
            out.allocated_new_entry(),
            out.insertion_attempts()
        );
    }
    dir.apply(DirectoryOp::Probe { line: block }, &mut out);
    println!("sharers of {block}: {:?}", out.sharers());

    // A write by cache 5 invalidates the other sharers.
    dir.apply(
        DirectoryOp::SetExclusive {
            line: block,
            cache: CacheId::new(5),
        },
        &mut out,
    );
    println!("write by cache5 invalidates: {:?}", out.invalidate());
    println!("sharers after the write:    {:?}\n", dir.sharers(block));

    // --- 2. The same directory inside a simulated 16-core CMP -------------
    let system = SystemConfig::table1(Hierarchy::SharedL2);
    let spec = DirectorySpec::cuckoo(4, 1.0);
    let mut trace = TraceGenerator::new(WorkloadProfile::apache(), system.num_cores, 7);

    let mut sim = CmpSimulator::new(system, &spec)?;
    sim.run(&mut trace, 500_000); // warm the caches and the directory
    sim.reset_stats();
    sim.run(&mut trace, 500_000); // measure
    let report = sim.report();

    println!("{}", report.summary());
    println!(
        "directory event mix: insert {:.1}% / add sharer {:.1}% / remove sharer {:.1}% / remove tag {:.1}% / invalidate-all {:.1}%",
        report.directory.event_mix().insert_tag * 100.0,
        report.directory.event_mix().add_sharer * 100.0,
        report.directory.event_mix().remove_sharer * 100.0,
        report.directory.event_mix().remove_tag * 100.0,
        report.directory.event_mix().invalidate_all * 100.0,
    );
    Ok(())
}
