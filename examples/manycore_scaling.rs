//! Project the directory's energy and area from 16 to 1024 cores with the
//! analytical model (the paper's Figure 13), and print the headline
//! efficiency ratios.
//!
//! Run with: `cargo run --release --example manycore_scaling`

use cuckoo_directory::prelude::*;

fn main() {
    let model = EnergyModel::shared_l2();
    let cores = EnergyModel::paper_core_counts();

    let organizations = [
        DirOrg::DuplicateTag,
        DirOrg::Tagless,
        DirOrg::InCacheFullVector,
        DirOrg::SparseCoarse {
            ways: 8,
            provisioning: 8.0,
        },
        DirOrg::cuckoo_coarse_shared(),
    ];

    println!("Per-core directory energy (relative to a 1MB 16-way L2 tag lookup), Shared-L2:\n");
    print!("{:<22}", "organization");
    for c in &cores {
        print!("{:>10}", format!("{c} cores"));
    }
    println!();
    for org in &organizations {
        print!("{:<22}", org.label());
        for point in model.sweep(org, &cores) {
            print!("{:>10.2}", point.energy_relative);
        }
        println!();
    }

    println!("\nPer-core directory area (relative to a 1MB L2 data array), Shared-L2:\n");
    print!("{:<22}", "organization");
    for c in &cores {
        print!("{:>10}", format!("{c} cores"));
    }
    println!();
    for org in &organizations {
        print!("{:<22}", org.label());
        for point in model.sweep(org, &cores) {
            print!("{:>10.4}", point.area_relative);
        }
        println!();
    }

    let sparse8 = DirOrg::SparseCoarse {
        ways: 8,
        provisioning: 8.0,
    };
    let cuckoo = DirOrg::cuckoo_coarse_shared();
    println!("\nAt 1024 cores the Cuckoo directory is:");
    println!(
        "  {:.0}x more energy-efficient than Tagless",
        model.energy_advantage(&cuckoo, &DirOrg::Tagless, 1024)
    );
    println!(
        "  {:.1}x more area-efficient than Sparse 8x Coarse",
        model.area_advantage(&cuckoo, &sparse8, 1024)
    );
    println!(
        "  using {:.1}% of the L2 data-array area per core",
        model.evaluate(&cuckoo, 1024).area_relative * 100.0
    );
}
