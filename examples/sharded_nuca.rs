//! Multi-slice (NUCA-style) directories through the sharded wrapper.
//!
//! A many-core CMP distributes its directory across tiles; this example
//! builds the same total Cuckoo capacity as 1, 4 and 16 address-interleaved
//! slices purely from spec strings, drives each with the same operation
//! stream on the zero-allocation `apply` path, and shows that the sharded
//! composition preserves observable behaviour while spreading occupancy
//! evenly across slices.
//!
//! Run with: `cargo run --release --example sharded_nuca`

use cuckoo_directory::cuckoo::standard_registry;
use cuckoo_directory::directory::{DirectoryOp, Outcome};
use cuckoo_directory::prelude::*;

fn main() -> Result<(), ccd_common::ConfigError> {
    let registry = standard_registry();
    let mut out = Outcome::new();

    for slices in [1usize, 4, 16] {
        let spec = if slices == 1 {
            "cuckoo-4x4096-skew".to_string()
        } else {
            format!("sharded{slices}:cuckoo-4x4096-skew")
        };
        let mut dir = registry.build_str(&spec)?;

        // The same deterministic stream for every slice count.
        let mut rng = ccd_common::SplitMix64::new(0xCAFE);
        use ccd_common::rng::Rng64;
        let mut evictions = 0usize;
        for _ in 0..8192 {
            let line = LineAddr::from_block_number(rng.next_u64() >> 20);
            let cache = CacheId::new(rng.next_below(32) as u32);
            dir.apply(DirectoryOp::AddSharer { line, cache }, &mut out);
            evictions += out.forced_eviction_count();
        }

        println!(
            "{spec:<34} capacity {:>6}  entries {:>5}  occupancy {:>5.1}%  forced evictions {evictions}",
            dir.capacity(),
            dir.len(),
            dir.occupancy() * 100.0,
        );
    }

    println!();
    println!("Slice counts change where entries live, not what the protocol observes:");
    println!("the cuckoo displacement chains stay slice-local, so a 16-slice directory");
    println!("serves 16 independent tiles with the conflict behaviour of one big slice.");
    Ok(())
}
