//! Drive the coherence simulator with a hand-written memory trace instead of
//! the synthetic workload generators — the integration point for users who
//! have their own application traces.
//!
//! The trace models a simple producer/consumer pattern: core 0 writes a ring
//! of buffers that every other core then reads, a classic widely-shared
//! access pattern.
//!
//! Run with: `cargo run --release --example custom_trace`

use cuckoo_directory::prelude::*;

/// Builds the producer/consumer trace: `rounds` iterations over `buffers`
/// cache blocks.
fn producer_consumer_trace(cores: usize, buffers: u64, rounds: usize) -> Vec<MemRef> {
    let base = 0x7000_0000u64;
    let mut refs = Vec::new();
    for _ in 0..rounds {
        for b in 0..buffers {
            let addr = Address::new(base + b * 64);
            // Core 0 produces...
            refs.push(MemRef::write(CoreId::new(0), addr));
            // ...and every other core consumes.
            for core in 1..cores as u32 {
                refs.push(MemRef::read(CoreId::new(core), addr));
            }
        }
    }
    refs
}

fn main() -> Result<(), ccd_common::ConfigError> {
    let system = SystemConfig::table1(Hierarchy::SharedL2);
    let trace = producer_consumer_trace(system.num_cores, 4096, 6);
    println!(
        "producer/consumer trace: {} references over {} shared blocks\n",
        trace.len(),
        4096
    );

    for spec in [
        DirectorySpec::cuckoo(4, 1.0),
        DirectorySpec::sparse(8, 2.0),
        DirectorySpec::DuplicateTag,
    ] {
        let mut sim = CmpSimulator::new(system.clone(), &spec)?;
        let mut iter = trace.iter().copied();
        sim.run(&mut iter, trace.len() as u64);
        let report = sim.report();
        println!("{}", report.summary());
        println!(
            "    coherence invalidations: {} (every write invalidates the {} consumers)",
            report.coherence_invalidations,
            system.num_cores - 1
        );
        println!(
            "    forced invalidations:    {}\n",
            report.forced_invalidations
        );
    }

    println!("All organizations see the same coherence traffic (that is protocol-inherent);");
    println!("only conflict-prone organizations add forced invalidations on top of it.");
    Ok(())
}
