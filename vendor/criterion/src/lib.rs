//! A minimal, dependency-free drop-in for the subset of the `criterion` API
//! this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `criterion` crate cannot be fetched.  This shim keeps the bench sources
//! identical to idiomatic criterion code (`benchmark_group`,
//! `bench_function`, `BenchmarkId`, `criterion_group!`/`criterion_main!`)
//! while providing a simple wall-clock harness:
//!
//! * each benchmark is calibrated so one sample runs for roughly
//!   `Criterion::measure_budget` (override with `CCD_BENCH_MS`),
//! * several samples are taken and the median ns/iter is reported,
//! * output is plain text, one line per benchmark.
//!
//! Swap this for the real criterion by replacing the `criterion` entry in
//! the workspace `[workspace.dependencies]` table — no source changes
//! needed.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation; accepted and echoed in the report line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` style id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Id consisting of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// The timing loop handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-iteration timing.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn median_ns_per_iter(&self) -> f64 {
        if self.samples.is_empty() {
            return f64::NAN;
        }
        let mut ns: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        ns.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        ns[ns.len() / 2]
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark and prints its median time per iteration.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // Calibrate: grow the per-sample iteration count until one sample
        // fills the measurement budget.
        let budget = self.criterion.measure_budget;
        let mut iters = 1u64;
        loop {
            let mut probe = Bencher {
                iters_per_sample: iters,
                samples: Vec::new(),
                sample_count: 1,
            };
            f(&mut probe);
            let elapsed = probe.samples.first().copied().unwrap_or_default();
            if elapsed >= budget || iters >= 1 << 30 {
                break;
            }
            let grow = if elapsed.is_zero() {
                16
            } else {
                ((budget.as_secs_f64() / elapsed.as_secs_f64()).ceil() as u64).clamp(2, 16)
            };
            iters = iters.saturating_mul(grow);
        }
        let mut bencher = Bencher {
            iters_per_sample: iters,
            samples: Vec::new(),
            sample_count: self.criterion.sample_count,
        };
        f(&mut bencher);
        let ns = bencher.median_ns_per_iter();
        let throughput = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.1} Melem/s)", n as f64 * 1e3 / ns)
            }
            Some(Throughput::Bytes(n)) => format!("  ({:.1} MB/s)", n as f64 * 1e3 / ns),
            None => String::new(),
        };
        println!("{}/{id:<28} {ns:>12.1} ns/iter{throughput}", self.name);
        self
    }

    /// Ends the group (printing nothing extra; kept for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    measure_budget: Duration,
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let ms = std::env::var("CCD_BENCH_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(40);
        Criterion {
            measure_budget: Duration::from_millis(ms.max(1)),
            sample_count: 5,
        }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group: {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_a_finite_time() {
        let mut c = Criterion {
            measure_budget: Duration::from_micros(200),
            sample_count: 3,
        };
        let mut group = c.benchmark_group("smoke");
        let mut x = 0u64;
        group.bench_function(BenchmarkId::from_parameter("incr"), |b| {
            b.iter(|| {
                x = x.wrapping_add(1);
                x
            })
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
