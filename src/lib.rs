//! # cuckoo-directory
//!
//! A from-scratch Rust reproduction of *Cuckoo Directory: A Scalable
//! Directory for Many-Core Systems* (Ferdman, Lotfi-Kamran, Balet, Falsafi —
//! HPCA 2011): the Cuckoo coherence directory itself, every baseline
//! directory organization it is evaluated against, the cache/coherence
//! simulation substrate that drives them, synthetic stand-ins for the
//! paper's commercial and scientific workloads, and the analytical
//! energy/area model behind the paper's scaling projections.
//!
//! This crate is a facade: it re-exports the workspace crates under short
//! module names and provides a [`prelude`] with the types most programs
//! need.  Each subsystem lives in its own crate and can be used
//! independently:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`common`] | `ccd-common` | addresses, identifiers, RNG, statistics |
//! | [`hash`] | `ccd-hash` | skewing / multiply-shift / strong index hash families |
//! | [`sharers`] | `ccd-sharers` | full, coarse, hierarchical, limited-pointer sharer sets |
//! | [`directory`] | `ccd-directory` | the op/outcome `Directory` protocol, the baselines, the builder registry, sharded composition |
//! | [`cuckoo`] | `ccd-cuckoo` | the d-ary Cuckoo table and the Cuckoo directory (the paper's contribution) |
//! | [`cache`] | `ccd-cache` | set-associative private-cache models |
//! | [`coherence`] | `ccd-coherence` | the trace-driven tiled-CMP simulator |
//! | [`workloads`] | `ccd-workloads` | workload profiles, sharing-pattern scenario families, trace record/replay |
//! | [`service`] | `ccd-service` | the concurrent shard-per-worker directory service and its load-generator frontend |
//! | [`energy`] | `ccd-energy` | the analytical energy/area scaling model |
//!
//! # The directory protocol
//!
//! Every directory organization — Cuckoo and the five baselines — speaks
//! one explicit operation/outcome protocol: a
//! [`DirectoryOp`](directory::DirectoryOp) is dispatched through
//! [`Directory::apply`](directory::Directory::apply) into a caller-owned,
//! reusable [`Outcome`](directory::Outcome) buffer, so the steady-state hot
//! path (lookup hits, sharer updates on existing entries) performs **zero
//! heap allocations**.  Organizations are built at runtime from spec
//! strings like `"cuckoo-4x512-skew"` or `"sharded8:sparse-8x256"` through
//! [`standard_registry`](cuckoo::standard_registry):
//!
//! ```
//! use cuckoo_directory::directory::{DirectoryOp, Outcome};
//! use cuckoo_directory::prelude::*;
//!
//! let registry = cuckoo_directory::cuckoo::standard_registry();
//! let mut dir = registry.build_str("cuckoo-4x512-skew")?;
//!
//! let mut out = Outcome::new();
//! let line = LineAddr::from_block_number(0xabc);
//! dir.apply(DirectoryOp::AddSharer { line, cache: CacheId::new(3) }, &mut out);
//! assert!(out.allocated_new_entry());
//! dir.apply(DirectoryOp::Probe { line }, &mut out);
//! assert_eq!(out.sharers(), &[CacheId::new(3)]);
//! # Ok::<(), ccd_common::ConfigError>(())
//! ```
//!
//! # Quick start (simulator)
//!
//! ```
//! use cuckoo_directory::prelude::*;
//!
//! // Build the paper's 16-core Shared-L2 system with a 1x-provisioned
//! // 4-way Cuckoo directory and run a short OLTP-like trace through it.
//! let system = SystemConfig::table1(Hierarchy::SharedL2);
//! let spec = DirectorySpec::cuckoo(4, 1.0);
//! let mut trace = TraceGenerator::new(WorkloadProfile::db2(), system.num_cores, 42);
//! let report = CmpSimulator::run_workload(system, &spec, &mut trace, 50_000, 50_000)?;
//!
//! // The Cuckoo directory absorbs the working set without forced
//! // invalidations.
//! assert!(report.forced_invalidation_rate() < 0.01);
//!
//! // The same simulator is fully string-configurable:
//! let spec: DirectorySpec = "sharded4:cuckoo-4x512-skew".parse()?;
//! assert_eq!(spec.label(), "sharded4:cuckoo-4x512-skew");
//! # Ok::<(), ccd_common::ConfigError>(())
//! ```
//!
//! See the `examples/` directory for larger, runnable scenarios and the
//! `ccd-bench` crate for the binaries that regenerate every table and figure
//! of the paper's evaluation.

#![warn(missing_docs)]

pub use ccd_cache as cache;
pub use ccd_coherence as coherence;
pub use ccd_common as common;
pub use ccd_cuckoo as cuckoo;
pub use ccd_directory as directory;
pub use ccd_energy as energy;
pub use ccd_hash as hash;
pub use ccd_service as service;
pub use ccd_sharers as sharers;
pub use ccd_workloads as workloads;

/// The types most users of the library need, re-exported flat.
///
/// `DirectorySpec` here is the simulator-level spec of `ccd-coherence`
/// (provisioning factors and paper labels); the string-level geometry spec
/// lives at [`directory::DirectorySpec`] and backs
/// [`DirectorySpec::Custom`](ccd_coherence::DirectorySpec::Custom).
pub mod prelude {
    pub use ccd_cache::{Cache, CacheConfig};
    pub use ccd_coherence::{
        CmpSimulator, DirectorySpec, Hierarchy, ParallelRunner, SimJob, SimReport, SimStats,
        SystemConfig,
    };
    pub use ccd_common::{Address, BlockGeometry, CacheId, CoreId, LineAddr, MemRef};
    pub use ccd_cuckoo::{standard_registry, CuckooConfig, CuckooDirectory, CuckooTable};
    pub use ccd_directory::{
        BuilderRegistry, Directory, DirectoryOp, DirectoryStats, Outcome, ShardedDirectory,
        SharerView, SparseDirectory,
    };
    pub use ccd_energy::{DirOrg, EnergyModel};
    pub use ccd_hash::{HashFamily, HashKind, IndexHashFamily};
    pub use ccd_service::{DirectoryService, LoadSpec, ServiceConfig, ServiceReport};
    pub use ccd_sharers::{
        CoarseVector, FullBitVector, HierarchicalVector, SharerFormat, SharerSet,
    };
    pub use ccd_workloads::{
        ScenarioSpec, TraceFamily, TraceGenerator, TraceReader, TraceWriter, WorkloadProfile,
        WorkloadSpec,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_working_stack() {
        let config = CuckooConfig::new(4, 64, 8);
        let dir = CuckooDirectory::<FullBitVector>::new(config).expect("valid config");
        assert_eq!(dir.capacity(), 256);
        let model = EnergyModel::shared_l2();
        let point = model.evaluate(&DirOrg::cuckoo_coarse_shared(), 16);
        assert!(point.area_relative > 0.0);
    }

    #[test]
    fn prelude_exposes_the_op_outcome_protocol() {
        let mut dir = standard_registry()
            .build_str("sparse-4x64-c8")
            .expect("spec");
        let mut out = Outcome::new();
        let line = LineAddr::from_block_number(9);
        dir.apply(
            DirectoryOp::AddSharer {
                line,
                cache: CacheId::new(2),
            },
            &mut out,
        );
        assert!(out.allocated_new_entry());
        assert!(dir.may_hold(line, CacheId::new(2)));
    }
}
