//! # cuckoo-directory
//!
//! A from-scratch Rust reproduction of *Cuckoo Directory: A Scalable
//! Directory for Many-Core Systems* (Ferdman, Lotfi-Kamran, Balet, Falsafi —
//! HPCA 2011): the Cuckoo coherence directory itself, every baseline
//! directory organization it is evaluated against, the cache/coherence
//! simulation substrate that drives them, synthetic stand-ins for the
//! paper's commercial and scientific workloads, and the analytical
//! energy/area model behind the paper's scaling projections.
//!
//! This crate is a facade: it re-exports the workspace crates under short
//! module names and provides a [`prelude`] with the types most programs
//! need.  Each subsystem lives in its own crate and can be used
//! independently:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`common`] | `ccd-common` | addresses, identifiers, RNG, statistics |
//! | [`hash`] | `ccd-hash` | skewing / multiply-shift / strong index hash families |
//! | [`sharers`] | `ccd-sharers` | full, coarse, hierarchical, limited-pointer sharer sets |
//! | [`directory`] | `ccd-directory` | the `Directory` trait + Sparse, Skewed, Duplicate-Tag, In-Cache, Tagless baselines |
//! | [`cuckoo`] | `ccd-cuckoo` | the d-ary Cuckoo table and the Cuckoo directory (the paper's contribution) |
//! | [`cache`] | `ccd-cache` | set-associative private-cache models |
//! | [`coherence`] | `ccd-coherence` | the trace-driven tiled-CMP simulator |
//! | [`workloads`] | `ccd-workloads` | synthetic workload/trace generators |
//! | [`energy`] | `ccd-energy` | the analytical energy/area scaling model |
//!
//! # Quick start
//!
//! ```
//! use cuckoo_directory::prelude::*;
//!
//! // Build the paper's 16-core Shared-L2 system with a 1x-provisioned
//! // 4-way Cuckoo directory and run a short OLTP-like trace through it.
//! let system = SystemConfig::table1(Hierarchy::SharedL2);
//! let spec = DirectorySpec::cuckoo(4, 1.0);
//! let mut trace = TraceGenerator::new(WorkloadProfile::db2(), system.num_cores, 42);
//! let report = CmpSimulator::run_workload(system, &spec, &mut trace, 50_000, 50_000)?;
//!
//! // The Cuckoo directory absorbs the working set without forced
//! // invalidations.
//! assert!(report.forced_invalidation_rate() < 0.01);
//! # Ok::<(), ccd_common::ConfigError>(())
//! ```
//!
//! See the `examples/` directory for larger, runnable scenarios and the
//! `ccd-bench` crate for the binaries that regenerate every table and figure
//! of the paper's evaluation.

#![warn(missing_docs)]

pub use ccd_cache as cache;
pub use ccd_coherence as coherence;
pub use ccd_common as common;
pub use ccd_cuckoo as cuckoo;
pub use ccd_directory as directory;
pub use ccd_energy as energy;
pub use ccd_hash as hash;
pub use ccd_sharers as sharers;
pub use ccd_workloads as workloads;

/// The types most users of the library need, re-exported flat.
pub mod prelude {
    pub use ccd_cache::{Cache, CacheConfig};
    pub use ccd_coherence::{CmpSimulator, DirectorySpec, Hierarchy, SimReport, SystemConfig};
    pub use ccd_common::{Address, BlockGeometry, CacheId, CoreId, LineAddr, MemRef};
    pub use ccd_cuckoo::{CuckooConfig, CuckooDirectory, CuckooTable};
    pub use ccd_directory::{Directory, DirectoryStats, SparseDirectory};
    pub use ccd_energy::{DirOrg, EnergyModel};
    pub use ccd_hash::{HashFamily, HashKind, IndexHashFamily};
    pub use ccd_sharers::{CoarseVector, FullBitVector, HierarchicalVector, SharerSet};
    pub use ccd_workloads::{TraceGenerator, WorkloadProfile};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_working_stack() {
        let config = CuckooConfig::new(4, 64, 8);
        let dir = CuckooDirectory::<FullBitVector>::new(config).expect("valid config");
        assert_eq!(dir.capacity(), 256);
        let model = EnergyModel::shared_l2();
        let point = model.evaluate(&DirOrg::cuckoo_coarse_shared(), 16);
        assert!(point.area_relative > 0.0);
    }
}
